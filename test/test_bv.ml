(* Unit and property tests for Bitvec.Bv. *)

module Bv = Bitvec.Bv

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_empty () =
  let t = Bv.create 100 in
  check_int "length" 100 (Bv.length t);
  check_int "cardinal" 0 (Bv.cardinal t);
  check "is_empty" true (Bv.is_empty t)

let test_set_get_clear () =
  let t = Bv.create 70 in
  Bv.set t 0;
  Bv.set t 62;
  Bv.set t 63;
  Bv.set t 69;
  check "bit 0" true (Bv.get t 0);
  check "bit 62" true (Bv.get t 62);
  check "bit 63 (word boundary)" true (Bv.get t 63);
  check "bit 69" true (Bv.get t 69);
  check "bit 1" false (Bv.get t 1);
  check_int "cardinal" 4 (Bv.cardinal t);
  Bv.clear t 63;
  check "cleared" false (Bv.get t 63);
  check_int "cardinal after clear" 3 (Bv.cardinal t)

let test_assign () =
  let t = Bv.create 8 in
  Bv.assign t 3 true;
  check "assigned true" true (Bv.get t 3);
  Bv.assign t 3 false;
  check "assigned false" false (Bv.get t 3)

let test_out_of_range () =
  let t = Bv.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bv: index out of range")
    (fun () -> ignore (Bv.get t (-1)));
  Alcotest.check_raises "get 10" (Invalid_argument "Bv: index out of range")
    (fun () -> ignore (Bv.get t 10))

let test_fill_complement () =
  let t = Bv.create 65 in
  Bv.fill t true;
  check_int "filled cardinal" 65 (Bv.cardinal t);
  let c = Bv.complement t in
  check_int "complement cardinal" 0 (Bv.cardinal c);
  let c2 = Bv.complement c in
  check "double complement" true (Bv.equal t c2)

let test_setops () =
  let a = Bv.of_list 10 [ 1; 3; 5; 7 ] in
  let b = Bv.of_list 10 [ 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5; 6; 7 ]
    (Bv.to_list (Bv.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bv.to_list (Bv.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 7 ] (Bv.to_list (Bv.diff a b));
  check "subset no" false (Bv.subset a b);
  check "subset yes" true (Bv.subset (Bv.inter a b) a);
  check "disjoint no" false (Bv.disjoint a b);
  check "disjoint yes" true (Bv.disjoint (Bv.diff a b) b)

let test_inplace () =
  let a = Bv.of_list 10 [ 1; 2 ] in
  let b = Bv.of_list 10 [ 2; 3 ] in
  Bv.union_in_place a b;
  Alcotest.(check (list int)) "union_in_place" [ 1; 2; 3 ] (Bv.to_list a);
  Bv.diff_in_place a b;
  Alcotest.(check (list int)) "diff_in_place" [ 1 ] (Bv.to_list a);
  let c = Bv.of_list 10 [ 1; 5 ] in
  Bv.inter_in_place c (Bv.of_list 10 [ 5 ]);
  Alcotest.(check (list int)) "inter_in_place" [ 5 ] (Bv.to_list c)

let test_iter_fold () =
  let t = Bv.of_list 200 [ 0; 63; 64; 126; 199 ] in
  let collected = ref [] in
  Bv.iter_set (fun i -> collected := i :: !collected) t;
  Alcotest.(check (list int)) "iter order" [ 0; 63; 64; 126; 199 ]
    (List.rev !collected);
  check_int "fold sum" (0 + 63 + 64 + 126 + 199)
    (Bv.fold_set (fun i acc -> acc + i) t 0)

let test_copy_independent () =
  let a = Bv.of_list 10 [ 1 ] in
  let b = Bv.copy a in
  Bv.set b 2;
  check "copy independent" false (Bv.get a 2);
  check "copy kept" true (Bv.get b 1)

(* Properties *)

let gen_ops =
  QCheck.(pair (small_nat |> map (fun n -> n + 1)) (list small_nat))

let prop_of_list_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200 gen_ops
    (fun (n, l) ->
      let l = List.filter (fun i -> i < n) l |> List.sort_uniq compare in
      Bv.to_list (Bv.of_list n l) = l)

let prop_demorgan =
  QCheck.Test.make ~name:"De Morgan: not (a|b) = not a & not b" ~count:200
    QCheck.(triple small_nat (list small_nat) (list small_nat))
    (fun (n0, la, lb) ->
      let n = n0 + 1 in
      let mk l = Bv.of_list n (List.filter (fun i -> i < n) l) in
      let a = mk la and b = mk lb in
      Bv.equal
        (Bv.complement (Bv.union a b))
        (Bv.inter (Bv.complement a) (Bv.complement b)))

let prop_cardinal_union =
  QCheck.Test.make ~name:"|a|+|b| = |a∪b|+|a∩b|" ~count:200
    QCheck.(triple small_nat (list small_nat) (list small_nat))
    (fun (n0, la, lb) ->
      let n = n0 + 1 in
      let mk l = Bv.of_list n (List.filter (fun i -> i < n) l) in
      let a = mk la and b = mk lb in
      Bv.cardinal a + Bv.cardinal b
      = Bv.cardinal (Bv.union a b) + Bv.cardinal (Bv.inter a b))

let suite =
  ( "bv",
    [
      Alcotest.test_case "create empty" `Quick test_create_empty;
      Alcotest.test_case "set/get/clear across word boundary" `Quick
        test_set_get_clear;
      Alcotest.test_case "assign" `Quick test_assign;
      Alcotest.test_case "out of range raises" `Quick test_out_of_range;
      Alcotest.test_case "fill and complement respect padding" `Quick
        test_fill_complement;
      Alcotest.test_case "set operations" `Quick test_setops;
      Alcotest.test_case "in-place operations" `Quick test_inplace;
      Alcotest.test_case "iter/fold order" `Quick test_iter_fold;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      QCheck_alcotest.to_alcotest prop_of_list_roundtrip;
      QCheck_alcotest.to_alcotest prop_demorgan;
      QCheck_alcotest.to_alcotest prop_cardinal_union;
    ] )

(* Word-boundary and duplicate edge cases. *)

let test_exact_word_lengths () =
  List.iter
    (fun n ->
      let t = Bv.create n in
      Bv.fill t true;
      Alcotest.(check int) (Printf.sprintf "fill %d" n) n (Bv.cardinal t);
      let c = Bv.complement t in
      Alcotest.(check int) (Printf.sprintf "compl %d" n) 0 (Bv.cardinal c))
    [ 1; 62; 63; 64; 126; 127 ]

let test_of_list_duplicates () =
  let t = Bv.of_list 8 [ 3; 3; 3 ] in
  Alcotest.(check int) "dup sets once" 1 (Bv.cardinal t)

let test_zero_length () =
  let t = Bv.create 0 in
  Alcotest.(check int) "empty" 0 (Bv.cardinal t);
  Alcotest.(check bool) "is_empty" true (Bv.is_empty t);
  Alcotest.(check bool) "equal to self complement" true
    (Bv.equal t (Bv.complement t))

let prop_subset_reflexive_transitive =
  QCheck.Test.make ~name:"subset is reflexive and transitive via inter"
    ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (la, lb) ->
      let n = 40 in
      let mk l = Bv.of_list n (List.filter (fun i -> i < n) l) in
      let a = mk la and b = mk lb in
      let i = Bv.inter a b in
      Bv.subset a a && Bv.subset i a && Bv.subset i b)

let extra_cases =
  [
    Alcotest.test_case "exact word lengths" `Quick test_exact_word_lengths;
    Alcotest.test_case "of_list duplicates" `Quick test_of_list_duplicates;
    Alcotest.test_case "zero length" `Quick test_zero_length;
    QCheck_alcotest.to_alcotest prop_subset_reflexive_transitive;
  ]

let suite = (fst suite, snd suite @ extra_cases)

(* Word-parallel kernels: every operation is checked against the
   obvious scalar definition on random vectors of power-of-two
   lengths spanning several word boundaries. *)

module K = Bv.Kernel

let test_unsafe_accessors () =
  let t = Bv.create 130 in
  Bv.unsafe_set t 0;
  Bv.unsafe_set t 63;
  Bv.unsafe_set t 129;
  check "unsafe_get 0" true (Bv.unsafe_get t 0);
  check "unsafe_get 63" true (Bv.unsafe_get t 63);
  check "unsafe_get 129" true (Bv.unsafe_get t 129);
  check "unsafe_get 1" false (Bv.unsafe_get t 1);
  check_int "cardinal" 3 (Bv.cardinal t)

let test_logxor () =
  let a = Bv.of_list 10 [ 1; 3; 5 ] and b = Bv.of_list 10 [ 3; 4 ] in
  Alcotest.(check (list int)) "logxor" [ 1; 4; 5 ] (Bv.to_list (Bv.logxor a b));
  Bv.logxor_in_place a b;
  Alcotest.(check (list int)) "logxor_in_place" [ 1; 4; 5 ] (Bv.to_list a)

let random_bv rng n =
  let t = Bv.create n in
  for i = 0 to n - 1 do
    if Random.State.bool rng then Bv.set t i
  done;
  t

let test_neighbor_matches_permutation () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun n ->
      let len = 1 lsl n in
      let a = random_bv rng len in
      for j = 0 to n - 1 do
        let nb = K.neighbor ~j a in
        let d = K.neighbor_diff ~j a in
        for m = 0 to len - 1 do
          let want = Bv.get a (m lxor (1 lsl j)) in
          if Bv.get nb m <> want then
            Alcotest.failf "neighbor n=%d j=%d m=%d" n j m;
          if Bv.get d m <> (Bv.get a m <> want) then
            Alcotest.failf "neighbor_diff n=%d j=%d m=%d" n j m
        done
      done)
    [ 1; 2; 5; 6; 7; 8; 9; 10 ]

let test_neighbor_validation () =
  let a = Bv.create 12 in
  Alcotest.check_raises "not a multiple"
    (Invalid_argument
       "Bv.Kernel.neighbor_diff: length must be a multiple of 2^(j+1)")
    (fun () -> ignore (K.neighbor_diff ~j:3 a))

let test_popcount_and () =
  let rng = Random.State.make [| 7 |] in
  let a = random_bv rng 300 and b = random_bv rng 300 and c = random_bv rng 300 in
  check_int "and" (Bv.cardinal (Bv.inter a b)) (K.popcount_and a b);
  check_int "and3"
    (Bv.cardinal (Bv.inter a (Bv.inter b c)))
    (K.popcount_and3 a b c);
  check_int "or" (Bv.cardinal (Bv.union a b)) (K.popcount_or a b);
  check_int "xor" (Bv.cardinal (Bv.logxor a b)) (K.popcount_xor a b);
  check_int "and masked"
    (Bv.cardinal (Bv.inter (Bv.inter a b) c))
    (K.popcount_and_masked a b ~mask:c)

let test_counter_roundtrip () =
  let rng = Random.State.make [| 11 |] in
  let len = 200 in
  let c = K.counter_create ~len ~bits:5 in
  let reference = Array.make len 0 in
  for _ = 1 to 20 do
    let p = random_bv rng len in
    K.counter_add_bit c p;
    for i = 0 to len - 1 do
      if Bv.get p i then reference.(i) <- reference.(i) + 1
    done
  done;
  let got = K.counter_extract c in
  Alcotest.(check (array int)) "extract" reference got;
  check_int "get mid" reference.(100) (K.counter_get c 100);
  let mask = random_bv rng len in
  let want =
    Bv.fold_set (fun i acc -> acc + reference.(i)) mask 0
  in
  check_int "weighted sum" want (K.counter_weighted_sum c ~mask)

let test_counter_add_and_abs_diff () =
  let rng = Random.State.make [| 13 |] in
  let len = 150 in
  let mk rounds =
    let c = K.counter_create ~len ~bits:6 in
    for _ = 1 to rounds do
      K.counter_add_bit c (random_bv rng len)
    done;
    c
  in
  let a = mk 17 and b = mk 9 in
  let av = K.counter_extract a and bv = K.counter_extract b in
  let sum = K.counter_create ~len ~bits:6 in
  K.counter_add sum a;
  K.counter_add sum b;
  Alcotest.(check (array int)) "counter_add"
    (Array.map2 ( + ) av bv)
    (K.counter_extract sum);
  let abs, sign = K.counter_abs_diff a b in
  Alcotest.(check (array int)) "abs diff"
    (Array.map2 (fun x y -> Stdlib.abs (x - y)) av bv)
    (K.counter_extract abs);
  for i = 0 to len - 1 do
    if Bv.get sign i <> (bv.(i) > av.(i)) then Alcotest.failf "sign at %d" i
  done

let test_counter_neighbor () =
  let rng = Random.State.make [| 17 |] in
  let len = 128 in
  let c = K.counter_create ~len ~bits:4 in
  for _ = 1 to 9 do
    K.counter_add_bit c (random_bv rng len)
  done;
  let v = K.counter_extract c in
  List.iter
    (fun j ->
      let shifted = K.counter_neighbor ~j c in
      let got = K.counter_extract shifted in
      for m = 0 to len - 1 do
        if got.(m) <> v.(m lxor (1 lsl j)) then
          Alcotest.failf "counter_neighbor j=%d m=%d" j m
      done)
    [ 0; 1; 3; 6 ]

let test_counter_overflow () =
  let c = K.counter_create ~len:8 ~bits:2 in
  let ones = Bv.create 8 in
  Bv.fill ones true;
  K.counter_add_bit c ones;
  K.counter_add_bit c ones;
  K.counter_add_bit c ones;
  Alcotest.check_raises "overflow"
    (Invalid_argument "Bv.Kernel.counter_add_bit: overflow") (fun () ->
      K.counter_add_bit c ones)

let test_with_mode () =
  check "enabled by default" true (K.use ());
  K.with_mode false (fun () -> check "disabled inside" false (K.use ()));
  check "restored" true (K.use ());
  (try K.with_mode false (fun () -> failwith "boom") with Failure _ -> ());
  check "restored after exception" true (K.use ())

let prop_neighbor_involution =
  QCheck.Test.make ~name:"kernel neighbor is an involution" ~count:100
    QCheck.(pair (int_bound 6) (list small_nat))
    (fun (n0, l) ->
      let n = n0 + 1 in
      let len = 1 lsl n in
      let a = Bv.of_list len (List.filter (fun i -> i < len) l) in
      List.for_all
        (fun j -> Bv.equal a (K.neighbor ~j (K.neighbor ~j a)))
        (List.init n (fun j -> j)))

let kernel_cases =
  [
    Alcotest.test_case "unsafe accessors" `Quick test_unsafe_accessors;
    Alcotest.test_case "logxor" `Quick test_logxor;
    Alcotest.test_case "kernel neighbor matches permutation" `Quick
      test_neighbor_matches_permutation;
    Alcotest.test_case "kernel neighbor validation" `Quick
      test_neighbor_validation;
    Alcotest.test_case "kernel fused popcounts" `Quick test_popcount_and;
    Alcotest.test_case "counter roundtrip" `Quick test_counter_roundtrip;
    Alcotest.test_case "counter add / abs diff" `Quick
      test_counter_add_and_abs_diff;
    Alcotest.test_case "counter neighbor" `Quick test_counter_neighbor;
    Alcotest.test_case "counter overflow" `Quick test_counter_overflow;
    Alcotest.test_case "kernel mode toggle" `Quick test_with_mode;
    QCheck_alcotest.to_alcotest prop_neighbor_involution;
  ]

let suite = (fst suite, snd suite @ kernel_cases)
