(* Fault-injection campaigns: determinism, partial reports under a
   wall-clock budget, site subsampling, pooling invariants, checkpoint
   delivery, and argument validation. *)

module Spec = Pla.Spec
module Inject = Reliability.Inject
module Campaign = Reliability.Campaign

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small multi-level, multi-output circuit with some don't-cares. *)
let fixture () =
  let nl = Netlist.create ~ni:3 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  let x = Netlist.add nl Netlist.Gate.Xor [| a; 2 |] in
  let n = Netlist.add nl Netlist.Gate.Nor [| a; 2 |] in
  Netlist.set_outputs nl [| x; n |];
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  (* make the spec match the netlist on its care set, with a few DCs *)
  for m = 0 to 7 do
    let outs = Netlist.eval_minterm nl m in
    for o = 0 to 1 do
      Spec.set s ~o ~m (if outs.(o) then Spec.On else Spec.Off)
    done
  done;
  Spec.set s ~o:0 ~m:5 Spec.Dc;
  Spec.set s ~o:1 ~m:2 Spec.Dc;
  (s, nl)

let config ?(trials = 200) ?max_sites ?time_budget () =
  {
    Campaign.default_config with
    Campaign.trials_per_site = trials;
    max_sites;
    time_budget;
  }

(* Everything except wall-clock time must be identical across runs. *)
let strip (r : Campaign.report) =
  (r.Campaign.results, r.Campaign.sites_total, r.Campaign.sites_done,
   r.Campaign.complete)

let test_deterministic () =
  let s, nl = fixture () in
  let r1 = Campaign.run (config ()) s nl in
  let r2 = Campaign.run (config ()) s nl in
  check "same seed, same report" true (strip r1 = strip r2)

let test_sweep_shape () =
  let s, nl = fixture () in
  let r = Campaign.run (config ()) s nl in
  let n_sites = List.length (Inject.sites nl) in
  check_int "all sites done" n_sites r.Campaign.sites_done;
  check_int "sites_total" n_sites r.Campaign.sites_total;
  check "complete" true r.Campaign.complete;
  check_int "one result per (site, kind)"
    (n_sites * List.length Inject.all_kinds)
    (List.length r.Campaign.results);
  List.iter
    (fun sr ->
      check_int "events = trials * outputs" (sr.Campaign.trials * 2)
        sr.Campaign.events;
      let lo, hi = sr.Campaign.ci in
      check "rate within its CI" true
        (lo <= sr.Campaign.rate && sr.Campaign.rate <= hi);
      check "CI within [0,1]" true (0.0 <= lo && hi <= 1.0))
    r.Campaign.results

(* Per-site rates must not depend on which other sites were swept:
   the subsampled campaign reproduces the full campaign's numbers. *)
let test_subsample_consistent () =
  let s, nl = fixture () in
  let full = Campaign.run (config ()) s nl in
  let sub = Campaign.run (config ~max_sites:1 ()) s nl in
  check_int "one site" 1 sub.Campaign.sites_done;
  List.iter
    (fun (sr : Campaign.site_result) ->
      match
        List.find_opt
          (fun (fr : Campaign.site_result) ->
            fr.Campaign.site = sr.Campaign.site
            && fr.Campaign.kind = sr.Campaign.kind)
          full.Campaign.results
      with
      | Some fr -> check "matches full sweep" true (fr = sr)
      | None -> Alcotest.fail "subsampled site missing from full sweep")
    sub.Campaign.results

(* MC rates converge to Inject.exact_rate for every pair swept. *)
let test_rates_near_exact () =
  let s, nl = fixture () in
  let r = Campaign.run (config ~trials:4000 ()) s nl in
  List.iter
    (fun (sr : Campaign.site_result) ->
      let exact =
        Inject.exact_rate s nl
          { Inject.node = sr.Campaign.site; kind = sr.Campaign.kind }
      in
      check
        (Printf.sprintf "site %d %s" sr.Campaign.site
           (Inject.kind_name sr.Campaign.kind))
        true
        (abs_float (sr.Campaign.rate -. exact) < 0.05))
    r.Campaign.results

(* An undersized time budget still yields a valid (partial) report
   with at least one site evaluated. *)
let test_partial_report () =
  let s, nl = fixture () in
  let r = Campaign.run (config ~time_budget:0.0 ()) s nl in
  check "incomplete" false r.Campaign.complete;
  check_int "exactly the first site" 1 r.Campaign.sites_done;
  check_int "results for one site" (List.length Inject.all_kinds)
    (List.length r.Campaign.results);
  (* the surviving numbers equal the full sweep's *)
  let full = Campaign.run (config ()) s nl in
  List.iter
    (fun (sr : Campaign.site_result) ->
      check "partial matches full" true
        (List.exists (fun fr -> fr = sr) full.Campaign.results))
    r.Campaign.results

let test_checkpoints () =
  let s, nl = fixture () in
  let seen = ref [] in
  let r =
    Campaign.run
      ~checkpoint:(fun p -> seen := p.Campaign.sites_done :: !seen)
      (config ()) s nl
  in
  check_int "one checkpoint per site" r.Campaign.sites_done
    (List.length !seen);
  check "monotone progress" true
    (List.rev !seen = List.init r.Campaign.sites_done (fun i -> i + 1))

let test_pooled () =
  let s, nl = fixture () in
  let r = Campaign.run (config ()) s nl in
  let ps = Campaign.pooled r in
  check "one pool per kind" true
    (List.map (fun p -> p.Campaign.p_kind) ps = Campaign.default_config.kinds);
  List.iter
    (fun p ->
      let rs =
        List.filter
          (fun (sr : Campaign.site_result) ->
            sr.Campaign.kind = p.Campaign.p_kind)
          r.Campaign.results
      in
      check_int "pooled sites" (List.length rs) p.Campaign.p_sites;
      check_int "pooled events"
        (List.fold_left (fun a sr -> a + sr.Campaign.events) 0 rs)
        p.Campaign.p_events;
      check_int "pooled propagated"
        (List.fold_left (fun a sr -> a + sr.Campaign.propagated) 0 rs)
        p.Campaign.p_propagated;
      check "pooled rate is propagated/events" true
        (abs_float
           (p.Campaign.p_rate
           -. float_of_int p.Campaign.p_propagated
              /. float_of_int p.Campaign.p_events)
        < 1e-12);
      (match p.Campaign.p_worst with
      | None -> Alcotest.fail "no worst site on a non-empty pool"
      | Some w ->
          check "worst has max rate" true
            (List.for_all
               (fun (sr : Campaign.site_result) ->
                 sr.Campaign.rate <= w.Campaign.rate)
               rs));
      let lo, hi = p.Campaign.p_ci in
      check "pooled rate within CI" true
        (lo <= p.Campaign.p_rate && p.Campaign.p_rate <= hi))
    ps

let expect_invalid label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  | exception Invalid_argument _ -> ()

let test_validation () =
  let s, nl = fixture () in
  expect_invalid "trials_per_site = 0" (fun () ->
      Campaign.run (config ~trials:0 ()) s nl);
  expect_invalid "empty kinds" (fun () ->
      Campaign.run { (config ()) with Campaign.kinds = [] } s nl);
  let wide = Spec.create ~ni:4 ~no:1 ~default:Spec.On in
  expect_invalid "input mismatch" (fun () ->
      Campaign.run (config ()) wide nl)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp_report_smoke () =
  let s, nl = fixture () in
  let r = Campaign.run (config ()) s nl in
  let out = Format.asprintf "%a" Campaign.pp_report r in
  check "mentions completeness" true (contains out "complete");
  check "lists every kind" true
    (List.for_all (fun k -> contains out (Inject.kind_name k)) Inject.all_kinds)

(* dead_sites excludes nodes before sweeping and lands in the config
   fingerprint; the per-site JSON names its fault kind. *)
let test_dead_sites () =
  let s, nl = fixture () in
  let all = Campaign.run (config ()) s nl in
  let sites r =
    List.sort_uniq compare
      (List.map (fun (sr : Campaign.site_result) -> sr.Campaign.site)
         r.Campaign.results)
  in
  match sites all with
  | [] -> Alcotest.fail "campaign swept no sites"
  | dead :: _ as every ->
      let cfg = { (config ()) with Campaign.dead_sites = [ dead ] } in
      let r = Campaign.run cfg s nl in
      check "dead site excluded" false (List.mem dead (sites r));
      check "live sites kept" true
        (sites r = List.filter (fun x -> x <> dead) every);
      let j = Rdca_json.Jsonout.to_string (Campaign.config_to_json cfg) in
      check "dead_sites in fingerprint" true (contains j "dead_sites")

let test_site_json_names_kind () =
  let s, nl = fixture () in
  let r = Campaign.run (config ()) s nl in
  List.iter
    (fun (sr : Campaign.site_result) ->
      let j = Rdca_json.Jsonout.to_string (Campaign.site_result_to_json sr) in
      check "site json names its kind" true
        (contains j ("\"" ^ Inject.kind_name sr.Campaign.kind ^ "\"")))
    r.Campaign.results

let suite =
  ( "campaign",
    [
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
      Alcotest.test_case "subsample consistent" `Quick
        test_subsample_consistent;
      Alcotest.test_case "rates near exact" `Quick test_rates_near_exact;
      Alcotest.test_case "partial report" `Quick test_partial_report;
      Alcotest.test_case "checkpoints" `Quick test_checkpoints;
      Alcotest.test_case "pooled invariants" `Quick test_pooled;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "pp_report smoke" `Quick test_pp_report_smoke;
      Alcotest.test_case "dead sites" `Quick test_dead_sites;
      Alcotest.test_case "site json names kind" `Quick
        test_site_json_names_kind;
    ] )
