(* Tests for the static verification subsystem (lib/check): the
   diagnostic framework, the spec linter, the cover checker, the
   netlist analyzer and the Flow integration — including the seeded
   defect classes the checkers must detect and the kernel/scalar and
   exhaustive/BDD differential contracts. *)

module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bitvec.Bv.Kernel
module Cover = Twolevel.Cover
module Cube = Twolevel.Cube
module Diag = Check.Diag
module Lint = Check.Spec_lint
module CC = Check.Cover_check
module NC = Check.Netlist_check
module N = Netlist
module Gate = Netlist.Gate
module Flow = Rdca_flow.Flow

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has_code c diags = List.exists (fun d -> d.Diag.code = c) diags

let error_with c diags =
  List.exists
    (fun d -> d.Diag.code = c && d.Diag.severity = Diag.Error)
    diags

let warn_with c diags =
  List.exists (fun d -> d.Diag.code = c && d.Diag.severity = Diag.Warn) diags

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Diag framework *)

let test_diag_sort_and_counts () =
  let d1 = Diag.info ~code:"zzz" ~loc:Diag.Global "i" in
  let d2 = Diag.error ~code:"bbb" ~loc:(Diag.Output 1) "e2" in
  let d3 = Diag.warn ~code:"mmm" ~loc:(Diag.Input_var 0) "w" in
  let d4 = Diag.error ~code:"bbb" ~loc:(Diag.Output 0) "e1" in
  let sorted = Diag.sort [ d1; d2; d3; d4 ] in
  check "errors first" true
    (List.map (fun d -> d.Diag.severity) sorted
    = [ Diag.Error; Diag.Error; Diag.Warn; Diag.Info ]);
  (* same severity+code: location order breaks the tie *)
  check "output 0 before output 1" true
    (List.map (fun d -> d.Diag.loc) (Diag.errors sorted)
    = [ Diag.Output 0; Diag.Output 1 ]);
  check_int "error count" 2 (Diag.count Diag.Error sorted);
  check "has_errors" true (Diag.has_errors sorted);
  check "max severity" true (Diag.max_severity sorted = Some Diag.Error);
  check "max severity empty" true (Diag.max_severity [] = None)

let test_diag_cap () =
  let many =
    List.init 30 (fun i -> Diag.warn ~code:"dup" ~loc:(Diag.Node i) "w%d" i)
  in
  let capped = Diag.cap ~limit:10 many in
  check_int "10 shown + 1 summary" 11 (List.length capped);
  let last = List.nth capped 10 in
  check "summary counts the rest" true
    (last.Diag.loc = Diag.Global
    && last.Diag.message = "20 additional dup diagnostic(s) not shown");
  check "under limit untouched" true (Diag.cap ~limit:10 [] = []);
  let few = [ Diag.warn ~code:"dup" ~loc:Diag.Global "w" ] in
  check "at limit untouched" true (Diag.cap ~limit:1 few = few)

let test_diag_locations () =
  let open Diag in
  check "global" true (location_to_string Global = "global");
  check "output" true (location_to_string (Output 2) = "y2");
  check "input" true (location_to_string (Input_var 3) = "x3");
  check "minterm" true
    (location_to_string (Minterm { output = 1; minterm = 5 }) = "y1/m5");
  check "term" true (location_to_string (Term { line = 12; col = 0 }) = "term:12");
  check "term col" true
    (location_to_string (Term { line = 12; col = 5 }) = "term:12:5");
  check "cube" true
    (location_to_string (Cube { output = 0; index = 4 }) = "y0/cube4");
  check "node" true (location_to_string (Node 7) = "node:7")

let test_diag_json () =
  let diags =
    [
      Diag.error ~code:"e" ~loc:(Diag.Output 0) "bad";
      Diag.info ~code:"i" ~loc:Diag.Global "ok";
    ]
  in
  let s = Rdca_json.Jsonout.to_string (Diag.report_to_json diags) in
  List.iter
    (fun frag ->
      check (Printf.sprintf "json contains %s" frag) true (contains s frag))
    [ "\"errors\": 1"; "\"warnings\": 0"; "\"code\": \"e\""; "\"kind\": \"output\"" ]

(* ------------------------------------------------------------------ *)
(* Spec linter *)

(* y0 = x0 AND x1 over 3 inputs: x2 unused. *)
let spec_with_unused_input () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:3 Spec.On;
  Spec.set s ~o:0 ~m:7 Spec.On;
  s

let test_unused_inputs () =
  let s = spec_with_unused_input () in
  check "x2 unused" true (Lint.unused_inputs s = [ 2 ]);
  let diags = Lint.lint s in
  check "unused-input warned" true (warn_with "unused-input" diags);
  check "located at x2" true
    (List.exists
       (fun d -> d.Diag.code = "unused-input" && d.Diag.loc = Diag.Input_var 2)
       diags)

let test_constant_and_duplicate_outputs () =
  let s = Spec.create ~ni:2 ~no:4 ~default:Spec.Off in
  (* y0: normal; y1: duplicate of y0; y2: constant 1; y3: all DC. *)
  Spec.set s ~o:0 ~m:1 Spec.On;
  Spec.set s ~o:1 ~m:1 Spec.On;
  for m = 0 to 3 do
    Spec.set s ~o:2 ~m Spec.On;
    Spec.set s ~o:3 ~m Spec.Dc
  done;
  let diags = Lint.lint s in
  check "duplicate-output" true
    (List.exists
       (fun d -> d.Diag.code = "duplicate-output" && d.Diag.loc = Diag.Output 1)
       diags);
  check "constant-output" true
    (List.exists
       (fun d -> d.Diag.code = "constant-output" && d.Diag.loc = Diag.Output 2)
       diags);
  check "free-output" true
    (List.exists
       (fun d -> d.Diag.code = "free-output" && d.Diag.loc = Diag.Output 3)
       diags);
  check "dc-density present" true (has_code "dc-density" diags);
  check "lint never errors" false (Diag.has_errors diags)

let test_lint_kernel_scalar_agree () =
  let rng = Random.State.make [| 2024 |] in
  for _ = 1 to 20 do
    let ni = 3 + Random.State.int rng 3 in
    let no = 1 + Random.State.int rng 3 in
    let s = Spec.create ~ni ~no ~default:Spec.Dc in
    for o = 0 to no - 1 do
      for m = 0 to (1 lsl ni) - 1 do
        match Random.State.int rng 3 with
        | 0 -> Spec.set s ~o ~m Spec.On
        | 1 -> Spec.set s ~o ~m Spec.Off
        | _ -> ()
      done
    done;
    let d_scalar = K.with_mode false (fun () -> Lint.lint s) in
    let d_kernel = K.with_mode true (fun () -> Lint.lint s) in
    check "kernel/scalar lints identical" true (d_scalar = d_kernel)
  done

(* Raw .pla with an on/off overlap: the first term turns minterm 3 on,
   the second turns it off again ('0' only drives the off-set under
   .type fr/fdr). *)
let overlap_pla = ".i 2\n.o 1\n.type fdr\n11 1\n1- 0\n.e\n"

let test_pla_overlap_is_error () =
  let pla = Pla.parse_string overlap_pla in
  let diags = Lint.lint_pla pla in
  check "on-off-overlap error" true (error_with "on-off-overlap" diags);
  check "overlap_errors finds it too" true
    (error_with "on-off-overlap" (Lint.overlap_errors pla));
  (* the conflicting term is '1- 0' on line 5; its output char sits in
     column 4 *)
  check "located at term:5:4" true
    (List.exists
       (fun d ->
         d.Diag.code = "on-off-overlap"
         && d.Diag.loc = Diag.Term { line = 5; col = 4 })
       diags)

let test_pla_contradictory_and_duplicate_terms () =
  (* minterm 3 declared on then DC: contradictory (warn, not error);
     the 11 1 line appears twice: duplicate-term. *)
  let pla = Pla.parse_string ".i 2\n.o 1\n11 1\n11 1\n1- -\n.e\n" in
  let diags = Lint.lint_pla pla in
  check "contradictory-term warn" true (warn_with "contradictory-term" diags);
  check "duplicate-term warn" true (warn_with "duplicate-term" diags);
  check "no overlap error" false (error_with "on-off-overlap" diags);
  (* a clean file has neither *)
  let clean = Pla.parse_string ".i 2\n.o 1\n11 1\n0- 0\n.e\n" in
  let clean_diags = Lint.lint_pla clean in
  check "clean file has no term diags" false
    (has_code "contradictory-term" clean_diags
    || has_code "duplicate-term" clean_diags
    || has_code "on-off-overlap" clean_diags)

(* ------------------------------------------------------------------ *)
(* Cover checker *)

let two_bit_and () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:3 Spec.On;
  s

let test_cover_good () =
  let s = two_bit_and () in
  let cover = Cover.make ~n:2 [ Cube.of_string "11" ] in
  check "good cover passes" false
    (Diag.has_errors (CC.check_cover ~spec:s ~o:0 cover))

let test_cover_uncovered_onset () =
  let s = two_bit_and () in
  let empty = Cover.empty ~n:2 in
  let diags = CC.check_cover ~spec:s ~o:0 empty in
  check "uncovered-onset error" true (error_with "uncovered-onset" diags)

let test_cover_offset_hit () =
  let s = two_bit_and () in
  let cover = Cover.make ~n:2 [ Cube.of_string "1-" ] in
  let diags = CC.check_cover ~spec:s ~o:0 cover in
  check "offset-hit error" true (error_with "offset-hit" diags);
  check "offending cube located" true
    (List.exists
       (fun d ->
         d.Diag.code = "offset-hit"
         && d.Diag.loc = Diag.Cube { output = 0; index = 0 })
       diags)

let test_cover_redundancy_warnings () =
  let s = two_bit_and () in
  Spec.set s ~o:0 ~m:1 Spec.Dc;
  Spec.set s ~o:0 ~m:2 Spec.Dc;
  (* 1- is legal (m1 off→wait m1=01: x0=1).  Cube "11" contained in
     "1-"; "1-" itself covers on-set, so "11" is both contained and
     redundant. *)
  let cover = Cover.make ~n:2 [ Cube.of_string "1-"; Cube.of_string "11" ] in
  let diags = CC.check_cover ~spec:s ~o:0 cover in
  check "no errors" false (Diag.has_errors diags);
  check "contained-cube warn" true (warn_with "contained-cube" diags);
  check "redundant-cube warn" true (warn_with "redundant-cube" diags);
  check "redundancy pass can be disabled" false
    (has_code "contained-cube"
       (CC.check_cover ~include_redundancy:false ~spec:s ~o:0 cover))

let test_coverage_counts_engines_agree () =
  let rng = Random.State.make [| 4242 |] in
  for _ = 1 to 30 do
    let ni = 3 + Random.State.int rng 3 in
    let s = Spec.create ~ni ~no:1 ~default:Spec.Dc in
    for m = 0 to (1 lsl ni) - 1 do
      match Random.State.int rng 3 with
      | 0 -> Spec.set s ~o:0 ~m Spec.On
      | 1 -> Spec.set s ~o:0 ~m Spec.Off
      | _ -> ()
    done;
    let cover =
      Cover.make ~n:ni
        (List.init
           (1 + Random.State.int rng 4)
           (fun _ ->
             Cube.make ~n:ni
               (List.init ni (fun _ ->
                    match Random.State.int rng 3 with
                    | 0 -> Cube.Zero
                    | 1 -> Cube.One
                    | _ -> Cube.Free))))
    in
    let k = CC.coverage_counts_kernel ~spec:s ~o:0 cover in
    let sc = CC.coverage_counts_scalar ~spec:s ~o:0 cover in
    check "kernel = scalar coverage counts" true (k = sc)
  done

let test_check_covers_length_mismatch () =
  let s = two_bit_and () in
  Alcotest.check_raises "wrong list length"
    (Invalid_argument "Cover_check.check_covers: 2 covers for 1 outputs")
    (fun () -> ignore (CC.check_covers ~spec:s [ Cover.empty ~n:2; Cover.empty ~n:2 ]))

(* ------------------------------------------------------------------ *)
(* Netlist analyzer *)

let test_cycle_detection () =
  (* 0,1 inputs; 2 -> 3 -> 4 -> 2 cycle feeding output 4. *)
  let g =
    {
      NC.node_count = 5;
      inputs = [| 0; 1 |];
      fanins = [| [||]; [||]; [| 0; 4 |]; [| 2 |]; [| 3; 1 |] |];
      outputs = [| 4 |];
    }
  in
  let diags = NC.structure g in
  check "combinational-cycle error" true
    (error_with "combinational-cycle" diags);
  check "cycle names its nodes" true
    (List.exists
       (fun d ->
         d.Diag.code = "combinational-cycle"
         && d.Diag.loc = Diag.Node 2
         && d.Diag.message
            = "combinational cycle through 3 node(s): 2, 3, 4")
       diags)

let test_self_loop_detection () =
  let g =
    {
      NC.node_count = 2;
      inputs = [| 0 |];
      fanins = [| [||]; [| 1 |] |];
      outputs = [| 1 |];
    }
  in
  check "self-loop is a cycle" true
    (error_with "combinational-cycle" (NC.structure g))

let test_dangling_and_floating () =
  (* node 3 (And of inputs) feeds nothing; input 1 floats. *)
  let g =
    {
      NC.node_count = 4;
      inputs = [| 0; 1 |];
      fanins = [| [||]; [||]; [| 0 |]; [| 0; 0 |] |];
      outputs = [| 2 |];
    }
  in
  let diags = NC.structure g in
  check "dangling-node warn" true (warn_with "dangling-node" diags);
  check "dangling is node 3" true
    (List.exists
       (fun d -> d.Diag.code = "dangling-node" && d.Diag.loc = Diag.Node 3)
       diags);
  check "floating-input warn" true (warn_with "floating-input" diags);
  check "floating is node 1" true
    (List.exists
       (fun d -> d.Diag.code = "floating-input" && d.Diag.loc = Diag.Node 1)
       diags);
  check "no cycle errors" false (has_code "combinational-cycle" diags)

let test_bad_fanin () =
  let g =
    {
      NC.node_count = 2;
      inputs = [| 0 |];
      fanins = [| [||]; [| 9 |] |];
      outputs = [| 1 |];
    }
  in
  check "bad-fanin error" true (error_with "bad-fanin" (NC.structure g))

let full_adder () =
  let t = N.create ~ni:3 in
  let sum = N.add t Gate.Xor [| 0; 1; 2 |] in
  let ab = N.add t Gate.And [| 0; 1 |] in
  let ac = N.add t Gate.And [| 0; 2 |] in
  let bc = N.add t Gate.And [| 1; 2 |] in
  let cout = N.add t Gate.Or [| ab; ac; bc |] in
  N.set_outputs t [| sum; cout |];
  t

let test_clean_netlist_structure () =
  let diags = NC.check (full_adder ()) in
  check "no errors on a clean netlist" false (Diag.has_errors diags);
  check "fanout stats present" true (has_code "fanout-stats" diags)

(* Spec exactly matching the full adder's two outputs. *)
let full_adder_spec () =
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  for m = 0 to 7 do
    let total = (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) in
    if total land 1 = 1 then Spec.set s ~o:0 ~m Spec.On;
    if total >= 2 then Spec.set s ~o:1 ~m Spec.On
  done;
  s

let test_equiv_pass_both_engines () =
  let nl = full_adder () and s = full_adder_spec () in
  List.iter
    (fun engine ->
      check "equivalent netlist passes" true
        (NC.equiv_spec ~engine ~spec:s nl = []))
    [ NC.Auto; NC.Exhaustive; NC.Bdd_backed ]

let test_equiv_mismatch_engines_identical () =
  let nl = full_adder () and s = full_adder_spec () in
  (* Break cout: maj -> nand of the last pair. *)
  N.replace_gate nl 7 Gate.Nand;
  let d_ex = NC.equiv_spec ~engine:NC.Exhaustive ~spec:s nl in
  let d_bdd = NC.equiv_spec ~engine:NC.Bdd_backed ~spec:s nl in
  check "mismatch detected" true (error_with "care-set-mismatch" d_ex);
  check "engines produce identical diagnostics" true (d_ex = d_bdd)

let test_equiv_respects_dc () =
  (* Output disagrees with the netlist only on DC minterms: passes. *)
  let nl = full_adder () in
  let s = full_adder_spec () in
  Spec.set s ~o:1 ~m:7 Spec.Dc;
  check "DC minterms don't count" true
    (NC.equiv_spec ~engine:NC.Exhaustive ~spec:s nl = []);
  Spec.set s ~o:1 ~m:0 Spec.On;
  check "care mismatch still counts" true
    (Diag.has_errors (NC.equiv_spec ~engine:NC.Exhaustive ~spec:s nl))

let test_equiv_arity_mismatch () =
  let nl = full_adder () in
  let s = Spec.create ~ni:2 ~no:2 ~default:Spec.Dc in
  check "input arity mismatch" true
    (error_with "arity-mismatch" (NC.equiv_spec ~spec:s nl))

let test_aig_graph () =
  let aig = Aig.create ~ni:2 in
  let x = Aig.land_ aig (Aig.input aig 0) (Aig.input aig 1) in
  Aig.set_outputs aig [| x |];
  let diags = NC.check_aig aig in
  check "clean AIG has no errors" false (Diag.has_errors diags)

(* ------------------------------------------------------------------ *)
(* Flow integration *)

let with_tmp_pla contents f =
  let path = Filename.temp_file "rdca_check" ".pla" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_flow_refuses_overlap () =
  with_tmp_pla overlap_pla @@ fun path ->
  (match Flow.load_spec path with
  | Error (Flow.Check_failed { diags; _ }) ->
      check "refusal carries the overlap diag" true
        (error_with "on-off-overlap" diags)
  | Ok _ -> Alcotest.fail "overlapping .pla accepted"
  | Error e -> Alcotest.fail (Flow.error_to_string e));
  check "error message mentions the check" true
    (match Flow.load_spec path with
    | Error e -> contains (Flow.error_to_string e) "on-off-overlap"
    | Ok _ -> false)

let test_flow_load_source_lints () =
  with_tmp_pla ".i 2\n.o 1\n11 1\n11 1\n.e\n" @@ fun path ->
  match Flow.load_source path with
  | Ok src ->
      check "pla retained for files" true (src.Flow.pla <> None);
      check "term-level lint sees duplicates" true
        (warn_with "duplicate-term" (Flow.lint_source src))
  | Error e -> Alcotest.fail (Flow.error_to_string e)

let small_spec () =
  let rng = Random.State.make [| 77 |] in
  let p =
    Synthetic.Synth_gen.default_params ~ni:6 ~dc_frac:0.6 ~target_cf:(Some 0.6)
  in
  Synthetic.Synth_gen.spec ~rng ~no:3 p

let test_implement_checked_ok () =
  match Flow.implement_checked (small_spec ()) with
  | Ok (full, covers) ->
      check_int "one cover per output" 3 (List.length covers);
      check "fully specified" true (Spec.dc_fraction full = 0.0)
  | Error e -> Alcotest.fail (Flow.error_to_string e)

let test_synthesize_checked_clean () =
  let spec = small_spec () in
  List.iter
    (fun strategy ->
      match
        Flow.synthesize_checked ~mode:Techmap.Mapper.Delay ~strategy spec
      with
      | Ok (r, diags) ->
          check "no error diagnostics" false (Diag.has_errors diags);
          check "covers ride along" true (List.length r.Flow.covers = 3)
      | Error e -> Alcotest.fail (Flow.error_to_string e))
    [ Flow.Conventional; Flow.Ranking 1.0; Flow.Complete ]

let test_synthesize_shared_covers () =
  let spec = small_spec () in
  let r = Flow.synthesize_shared ~mode:Techmap.Mapper.Delay
      ~strategy:Flow.Conventional spec
  in
  (* The per-output view of the shared cubes must still be a correct
     cover of each output's care set. *)
  check "shared covers pass the checker" false
    (Diag.has_errors (CC.check_covers ~spec r.Flow.covers))

(* ------------------------------------------------------------------ *)
(* Properties (QCheck): espresso covers always check clean; dropping a
   random on-set minterm is always detected. *)

let gen_consistent_spec =
  QCheck.Gen.(
    pair (int_range 3 6) (int_bound 1_000_000)
    |> map (fun (ni, seed) ->
           let rng = Random.State.make [| seed; ni |] in
           let no = 1 + Random.State.int rng 3 in
           let s = Spec.create ~ni ~no ~default:Spec.Dc in
           for o = 0 to no - 1 do
             for m = 0 to (1 lsl ni) - 1 do
               match Random.State.int rng 3 with
               | 0 -> Spec.set s ~o ~m Spec.On
               | 1 -> Spec.set s ~o ~m Spec.Off
               | _ -> ()
             done
           done;
           s))

let arb_spec =
  QCheck.make ~print:(fun s -> Pla.to_string s) gen_consistent_spec

let espresso_covers spec =
  List.init (Spec.no spec) (fun o ->
      let on = Spec.on_bv spec ~o and dc = Spec.dc_bv spec ~o in
      Espresso.Dense.minimize ~n:(Spec.ni spec) ~on ~dc)

let prop_espresso_covers_check_clean =
  QCheck.Test.make ~name:"espresso covers pass the cover checker" ~count:100
    arb_spec (fun spec ->
      not (Diag.has_errors (CC.check_covers ~spec (espresso_covers spec))))

let prop_dropped_minterm_detected =
  QCheck.Test.make ~name:"dropping an on-set minterm fails the checker"
    ~count:100 arb_spec (fun spec ->
      (* pick the first output with a nonempty on-set and re-cover it
         from its on-set minus one minterm *)
      let no = Spec.no spec and ni = Spec.ni spec in
      let rec pick o =
        if o >= no then None
        else if Spec.on_count spec ~o > 0 then Some o
        else pick (o + 1)
      in
      match pick 0 with
      | None -> QCheck.assume_fail ()
      | Some o ->
          let on = Bv.copy (Spec.on_bv spec ~o) in
          let victim = List.hd (Bv.to_list on) in
          Bv.clear on victim;
          let broken = Cover.of_bv ~n:ni on in
          let covers =
            List.mapi
              (fun o' c -> if o' = o then broken else c)
              (espresso_covers spec)
          in
          let diags = CC.check_covers ~spec covers in
          Diag.has_errors diags
          && List.exists
               (fun d ->
                 d.Diag.code = "uncovered-onset"
                 && d.Diag.loc = Diag.Output o)
               diags)

let prop_equiv_engines_agree =
  QCheck.Test.make ~name:"exhaustive and BDD equivalence engines agree"
    ~count:40 arb_spec (fun spec ->
      let full, covers = Flow.implement spec in
      ignore full;
      let aig = Aig.of_covers ~ni:(Spec.ni spec) covers in
      let nl =
        Techmap.Mapper.map ~mode:Techmap.Mapper.Area
          ~lib:(Techmap.Stdcell.default_library ()) (Aig.Opt.balance aig)
      in
      let d_ex = NC.equiv_spec ~engine:NC.Exhaustive ~spec nl in
      let d_bdd = NC.equiv_spec ~engine:NC.Bdd_backed ~spec nl in
      d_ex = [] && d_bdd = [])

let suite =
  ( "check",
    [
      Alcotest.test_case "diag sort and counts" `Quick test_diag_sort_and_counts;
      Alcotest.test_case "diag cap" `Quick test_diag_cap;
      Alcotest.test_case "diag locations" `Quick test_diag_locations;
      Alcotest.test_case "diag json" `Quick test_diag_json;
      Alcotest.test_case "unused inputs" `Quick test_unused_inputs;
      Alcotest.test_case "constant/duplicate outputs" `Quick
        test_constant_and_duplicate_outputs;
      Alcotest.test_case "lint kernel=scalar" `Quick
        test_lint_kernel_scalar_agree;
      Alcotest.test_case "pla overlap is error" `Quick test_pla_overlap_is_error;
      Alcotest.test_case "pla contradictory/duplicate" `Quick
        test_pla_contradictory_and_duplicate_terms;
      Alcotest.test_case "cover good" `Quick test_cover_good;
      Alcotest.test_case "cover uncovered onset" `Quick
        test_cover_uncovered_onset;
      Alcotest.test_case "cover offset hit" `Quick test_cover_offset_hit;
      Alcotest.test_case "cover redundancy warns" `Quick
        test_cover_redundancy_warnings;
      Alcotest.test_case "coverage counts engines" `Quick
        test_coverage_counts_engines_agree;
      Alcotest.test_case "check_covers length" `Quick
        test_check_covers_length_mismatch;
      Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
      Alcotest.test_case "self loop" `Quick test_self_loop_detection;
      Alcotest.test_case "dangling and floating" `Quick
        test_dangling_and_floating;
      Alcotest.test_case "bad fanin" `Quick test_bad_fanin;
      Alcotest.test_case "clean netlist" `Quick test_clean_netlist_structure;
      Alcotest.test_case "equiv pass both engines" `Quick
        test_equiv_pass_both_engines;
      Alcotest.test_case "equiv mismatch identical" `Quick
        test_equiv_mismatch_engines_identical;
      Alcotest.test_case "equiv respects DC" `Quick test_equiv_respects_dc;
      Alcotest.test_case "equiv arity mismatch" `Quick
        test_equiv_arity_mismatch;
      Alcotest.test_case "aig graph" `Quick test_aig_graph;
      Alcotest.test_case "flow refuses overlap" `Quick test_flow_refuses_overlap;
      Alcotest.test_case "flow load_source lints" `Quick
        test_flow_load_source_lints;
      Alcotest.test_case "implement_checked ok" `Quick test_implement_checked_ok;
      Alcotest.test_case "synthesize_checked clean" `Quick
        test_synthesize_checked_clean;
      Alcotest.test_case "shared covers checked" `Quick
        test_synthesize_shared_covers;
      QCheck_alcotest.to_alcotest prop_espresso_covers_check_clean;
      QCheck_alcotest.to_alcotest prop_dropped_minterm_detected;
      QCheck_alcotest.to_alcotest prop_equiv_engines_agree;
    ] )
