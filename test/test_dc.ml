(* Tests for the windowed network don't-care analysis (lib/dc):
   hand-built windows with known SDC/ODC masks, SAT-vs-BDD engine
   agreement, conservativeness against the exhaustive Decompose
   oracle, and function preservation of the optimize sweep. *)

module Dc = Rdca_dc.Dc
module Window = Rdca_dc.Window
module Gate = Netlist.Gate
module Spec = Pla.Spec
module Decompose = Rdca_core.Decompose

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let deep_config depth backend =
  { Dc.default_config with Dc.depth; backend }

let both_engines = [ Dc.Sat_engine; Dc.Bdd_engine; Dc.Differential ]

(* x OR (x AND y): absorption — when x=1 the AND is masked. *)
let absorption () =
  let nl = Netlist.create ~ni:2 in
  let a = Netlist.add nl Gate.And [| 0; 1 |] in
  let o = Netlist.add nl Gate.Or [| 0; a |] in
  Netlist.set_outputs nl [| o |];
  (nl, a, o)

let test_absorption_odc () =
  let nl, a, _ = absorption () in
  List.iter
    (fun backend ->
      let config = deep_config 2 backend in
      let sdc, odc = Dc.masks_of nl ~config a in
      (* Fanins of the AND are (x, y): patterns 1 (x=1,y=0) and
         3 (x=1,y=1) have x=1, so the OR output is 1 either way. *)
      check_int (Dc.backend_name backend ^ " absorption sdc") 0 sdc;
      check_int (Dc.backend_name backend ^ " absorption odc") 0b1010 odc)
    both_engines

(* AND(x, NOT x): the two agreeing fanin patterns are unreachable. *)
let test_inverter_sdc () =
  let nl = Netlist.create ~ni:1 in
  let n = Netlist.add nl Gate.Not [| 0 |] in
  let a = Netlist.add nl Gate.And [| 0; n |] in
  Netlist.set_outputs nl [| a |];
  List.iter
    (fun backend ->
      let config = deep_config 2 backend in
      let sdc, odc = Dc.masks_of nl ~config a in
      (* patterns (x, n): 0b00 and 0b11 contradict n = !x *)
      check_int (Dc.backend_name backend ^ " sdc") 0b1001 sdc;
      check_int (Dc.backend_name backend ^ " odc") 0 odc)
    both_engines

let test_dead_gate_all_odc () =
  (* AND-with-0 downstream masks the node entirely. *)
  let nl = Netlist.create ~ni:2 in
  let dead = Netlist.add nl Gate.And [| 0; 1 |] in
  let zero = Netlist.add nl (Gate.Const false) [||] in
  let gated = Netlist.add nl Gate.And [| dead; zero |] in
  Netlist.set_outputs nl [| gated |];
  List.iter
    (fun backend ->
      let config = deep_config 2 backend in
      let sdc, odc = Dc.masks_of nl ~config dead in
      check_int (Dc.backend_name backend ^ " dead sdc") 0 sdc;
      check_int (Dc.backend_name backend ^ " dead odc") 0b1111 odc)
    both_engines

let test_observable_node_no_dc () =
  (* A lone XOR driving the output: everything reachable, everything
     observable. *)
  let nl = Netlist.create ~ni:2 in
  let x = Netlist.add nl Gate.Xor [| 0; 1 |] in
  Netlist.set_outputs nl [| x |];
  List.iter
    (fun backend ->
      let config = deep_config 2 backend in
      let sdc, odc = Dc.masks_of nl ~config x in
      check_int (Dc.backend_name backend ^ " xor sdc") 0 sdc;
      check_int (Dc.backend_name backend ^ " xor odc") 0 odc)
    both_engines

let test_window_shape () =
  let nl, a, o = absorption () in
  let fanouts = Window.fanouts nl in
  let w = Window.extract nl ~fanouts ~depth:2 a in
  check_int "center" a w.Window.center;
  check "leaves are the two inputs" true (w.Window.leaves = [| 0; 1 |]);
  check "members" true (w.Window.members = [| a; o |]);
  check "tfo" true (w.Window.tfo = [| a; o |]);
  check "roots" true (w.Window.roots = [| o |]);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "no window for inputs" true
    (raises (fun () -> Window.extract nl ~fanouts ~depth:2 0));
  check "depth >= 1" true
    (raises (fun () -> Window.extract nl ~fanouts ~depth:0 a))

let test_analyze_report () =
  let nl, _, _ = absorption () in
  let report = Dc.analyze ~config:(deep_config 2 Dc.Differential) nl in
  check_int "analyzed" 2 report.Dc.analyzed;
  check_int "skipped" 0 report.Dc.skipped;
  (* The AND has two ODC patterns (x=1 masks it downstream); the OR
     has one SDC pattern (its fanins x=0, x&y=1 contradict). *)
  check_int "nodes with dc" 2 report.Dc.nodes_with_dc;
  check_int "odc patterns" 2 report.Dc.odc_patterns;
  check_int "sdc patterns" 1 report.Dc.sdc_patterns;
  check_int "disagreements" 0 report.Dc.disagreements;
  List.iter
    (fun r -> check "differential agree flag" true (r.Dc.agree = Some true))
    report.Dc.nodes

let test_analyze_parallel_identical () =
  let nl, _, _ = absorption () in
  let run jobs =
    Parallel.Pool.with_jobs jobs (fun () ->
        Dc.analyze ~config:(deep_config 2 Dc.Differential) nl)
  in
  check "jobs 1 = jobs 4" true (run 1 = run 4)

let test_optimize_absorption () =
  let nl, a, _ = absorption () in
  let before = Netlist.output_tables nl in
  let r = Dc.optimize ~config:(deep_config 2 Dc.Bdd_engine) nl in
  check "input untouched" true
    (Array.for_all2 Bitvec.Bv.equal before (Netlist.output_tables nl));
  check "io preserved" true
    (Array.for_all2 Bitvec.Bv.equal before
       (Netlist.output_tables r.Dc.netlist));
  check "and node rewritten" true (List.mem a r.Dc.rewritten);
  check_int "odc seen during sweep" 2 r.Dc.opt_report.Dc.odc_patterns

let test_json_shape () =
  let nl, _, _ = absorption () in
  let r = Dc.optimize ~config:(deep_config 2 Dc.Differential) nl in
  let s = Rdca_json.Jsonout.to_string (Dc.opt_result_to_json r) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> check (key ^ " in json") true (contains ("\"" ^ key ^ "\"")))
    [ "rewritten_nodes"; "analysis"; "odc_mask"; "backends_agree" ]

(* Random mapped netlists, via the same pipeline the flow uses. *)
let random_netlist phases =
  let s = Spec.create ~ni:5 ~no:1 ~default:Spec.Off in
  List.iteri
    (fun m p ->
      Spec.set s ~o:0 ~m
        (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
    phases;
  let _, covers = Rdca_core.Assign.conventional s in
  let aig = Aig.of_covers ~ni:5 covers in
  let lib = Techmap.Stdcell.default_library () in
  (s, Techmap.Mapper.map ~mode:Techmap.Mapper.Area ~lib aig)

let phases_arb = QCheck.(list_of_size (QCheck.Gen.return 32) (int_bound 2))

let prop_engines_agree =
  QCheck.Test.make ~name:"sat and bdd masks bit-identical on every window"
    ~count:60
    QCheck.(pair phases_arb (QCheck.int_range 1 3))
    (fun (phases, depth) ->
      let _, nl = random_netlist phases in
      let report =
        Dc.analyze ~config:(deep_config depth Dc.Differential) nl
      in
      report.Dc.disagreements = 0
      && List.for_all (fun r -> r.Dc.agree = Some true) report.Dc.nodes)

let prop_window_dc_conservative =
  QCheck.Test.make
    ~name:"windowed DCs within the exhaustive Decompose masks" ~count:40
    QCheck.(pair phases_arb (QCheck.int_range 1 3))
    (fun (phases, depth) ->
      let _, nl = random_netlist phases in
      let reachable = Decompose.local_patterns nl in
      let report = Dc.analyze ~config:(deep_config depth Dc.Bdd_engine) nl in
      List.for_all
        (fun r ->
          let full = (1 lsl (1 lsl r.Dc.arity)) - 1 in
          let observable = Decompose.observability_mask nl ~node:r.Dc.node in
          (* SDC only where globally unreachable; any DC only where
             globally unobservable. *)
          r.Dc.sdc land reachable.(r.Dc.node) = 0
          && (r.Dc.sdc lor r.Dc.odc) land observable land full = 0)
        report.Dc.nodes)

let prop_optimize_preserves_functions =
  QCheck.Test.make ~name:"optimize preserves every output function"
    ~count:40
    QCheck.(pair phases_arb (QCheck.int_range 1 3))
    (fun (phases, depth) ->
      let _, nl = random_netlist phases in
      let before = Netlist.output_tables nl in
      List.for_all
        (fun strategy ->
          let r =
            Dc.optimize ~config:(deep_config depth Dc.Differential) ~strategy
              nl
          in
          Array.for_all2 Bitvec.Bv.equal before
            (Netlist.output_tables r.Dc.netlist))
        [ Dc.Complete; Dc.Ranking 0.5; Dc.Lcf 0.55 ])

let prop_optimize_care_equivalence =
  QCheck.Test.make
    ~name:"optimized netlist stays care-set equivalent to the spec"
    ~count:40 phases_arb
    (fun phases ->
      let spec, nl = random_netlist phases in
      let clean diags =
        not
          (List.exists
             (fun d -> d.Check.Diag.severity = Check.Diag.Error)
             diags)
      in
      let r = Dc.optimize ~config:(deep_config 2 Dc.Bdd_engine) nl in
      clean (Check.Netlist_check.equiv_spec ~spec nl)
      && clean (Check.Netlist_check.equiv_spec ~spec r.Dc.netlist))

let prop_zero_dc_is_identity =
  QCheck.Test.make ~name:"a zero-DC sweep rewrites nothing" ~count:40
    phases_arb
    (fun phases ->
      let _, nl = random_netlist phases in
      let r = Dc.optimize ~config:(deep_config 2 Dc.Bdd_engine) nl in
      let rp = r.Dc.opt_report in
      (* No recovered flexibility -> identity; and in general a node is
         only rewritten when it had DC patterns. *)
      (rp.Dc.sdc_patterns + rp.Dc.odc_patterns > 0 || r.Dc.rewritten = [])
      &&
      let dc_nodes =
        List.filter_map
          (fun nr ->
            if nr.Dc.sdc lor nr.Dc.odc <> 0 then Some nr.Dc.node else None)
          rp.Dc.nodes
      in
      List.for_all (fun v -> List.mem v dc_nodes) r.Dc.rewritten)

let prop_optimize_fixpoint =
  QCheck.Test.make
    ~name:"optimize converges: a fixpoint sweep changes no gate" ~count:20
    phases_arb
    (fun phases ->
      let _, nl = random_netlist phases in
      let config = deep_config 2 Dc.Bdd_engine in
      (* Iterate to a fixpoint (bounded); each step preserves the
         output functions, so so does the limit. *)
      let before = Netlist.output_tables nl in
      let rec go nl steps =
        if steps = 0 then nl
        else
          let r = Dc.optimize ~config nl in
          if r.Dc.rewritten = [] then r.Dc.netlist
          else go r.Dc.netlist (steps - 1)
      in
      let fixed = go nl 8 in
      let r = Dc.optimize ~config fixed in
      r.Dc.rewritten = []
      && Array.for_all2 Bitvec.Bv.equal before (Netlist.output_tables fixed))

let suite =
  ( "dc",
    [
      Alcotest.test_case "absorption odc" `Quick test_absorption_odc;
      Alcotest.test_case "inverter sdc" `Quick test_inverter_sdc;
      Alcotest.test_case "dead gate all odc" `Quick test_dead_gate_all_odc;
      Alcotest.test_case "observable node no dc" `Quick
        test_observable_node_no_dc;
      Alcotest.test_case "window shape" `Quick test_window_shape;
      Alcotest.test_case "analyze report" `Quick test_analyze_report;
      Alcotest.test_case "parallel identical" `Quick
        test_analyze_parallel_identical;
      Alcotest.test_case "optimize absorption" `Quick
        test_optimize_absorption;
      Alcotest.test_case "json shape" `Quick test_json_shape;
      QCheck_alcotest.to_alcotest prop_engines_agree;
      QCheck_alcotest.to_alcotest prop_window_dc_conservative;
      QCheck_alcotest.to_alcotest prop_optimize_preserves_functions;
      QCheck_alcotest.to_alcotest prop_optimize_care_equivalence;
      QCheck_alcotest.to_alcotest prop_zero_dc_is_identity;
      QCheck_alcotest.to_alcotest prop_optimize_fixpoint;
    ] )
