(* Tests for the end-to-end flow and the experiment drivers. *)

module Spec = Pla.Spec
module Flow = Rdca_flow.Flow
module E = Rdca_flow.Experiments
module ER = Reliability.Error_rate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_spec () =
  (* deterministic 6-input 3-output spec with a healthy DC space *)
  let rng = Random.State.make [| 77 |] in
  let p =
    Synthetic.Synth_gen.default_params ~ni:6 ~dc_frac:0.6 ~target_cf:(Some 0.6)
  in
  Synthetic.Synth_gen.spec ~rng ~no:3 p

let test_strategy_names () =
  Alcotest.(check string) "conv" "conventional"
    (Flow.strategy_name Flow.Conventional);
  Alcotest.(check string) "rank" "ranking(0.50)"
    (Flow.strategy_name (Flow.Ranking 0.5));
  Alcotest.(check string) "lcf" "lcf(0.60)" (Flow.strategy_name (Flow.Lcf 0.6));
  Alcotest.(check string) "complete" "complete"
    (Flow.strategy_name Flow.Complete)

let test_verified_synthesize_all_strategies () =
  let spec = small_spec () in
  List.iter
    (fun strategy ->
      List.iter
        (fun mode ->
          let r = Flow.verified_synthesize ~mode ~strategy spec in
          check
            (Printf.sprintf "%s/%s error in bounds"
               (Flow.strategy_name strategy)
               (Techmap.Mapper.mode_name mode))
            true
            (r.Flow.error_rate >= 0.0 && r.Flow.error_rate <= 1.0);
          check "positive area" true (r.Flow.report.Techmap.Report.area > 0.0))
        [ Techmap.Mapper.Delay; Techmap.Mapper.Area; Techmap.Mapper.Power ])
    [ Flow.Conventional; Flow.Ranking 0.5; Flow.Lcf 0.55; Flow.Complete ]

let test_error_within_exact_bounds () =
  let spec = small_spec () in
  let b = ER.mean_bounds spec in
  List.iter
    (fun strategy ->
      let r =
        Flow.synthesize ~mode:Techmap.Mapper.Delay ~strategy spec
      in
      check
        (Flow.strategy_name strategy ^ " within bounds")
        true
        (r.Flow.error_rate >= ER.min_rate b -. 1e-9
        && r.Flow.error_rate <= ER.max_rate b +. 1e-9))
    [ Flow.Conventional; Flow.Ranking 1.0; Flow.Complete ]

let test_complete_not_worse_than_conventional () =
  let spec = small_spec () in
  let conv = Flow.synthesize ~mode:Techmap.Mapper.Delay
      ~strategy:Flow.Conventional spec
  in
  let comp =
    Flow.synthesize ~mode:Techmap.Mapper.Delay ~strategy:Flow.Complete spec
  in
  check "complete error <= conventional" true
    (comp.Flow.error_rate <= conv.Flow.error_rate +. 1e-9)

let test_assigned_fraction_ordering () =
  let spec = small_spec () in
  let frac s =
    (Flow.synthesize ~mode:Techmap.Mapper.Delay ~strategy:s spec)
      .Flow.assigned_fraction
  in
  check "conventional assigns none" true (frac Flow.Conventional = 0.0);
  check "ranking monotone" true (frac (Flow.Ranking 0.3) <= frac (Flow.Ranking 1.0));
  check "complete assigns most" true (frac Flow.Complete >= frac (Flow.Ranking 0.5))

let test_table1_rows () =
  let rows = E.table1 () in
  check_int "twelve rows" 12 (List.length rows);
  List.iter
    (fun r ->
      check (r.E.t1_name ^ " cf close to paper") true
        (abs_float (r.E.t1_cf -. r.E.t1_paper_cf) < 0.05);
      check (r.E.t1_name ^ " dc% close to paper") true
        (abs_float
           (r.E.t1_dc_pct
           -. (Synthetic.Suite.find r.E.t1_name).Synthetic.Suite.dc_percent)
        < 2.5))
    rows

let test_fig2_trend () =
  let rows = E.fig2 ~targets:[ 0.3; 0.6; 0.9 ] ~per_target:2 ~seed:5 () in
  check_int "points" 6 (List.length rows);
  let mean target =
    let sel = List.filter (fun p -> p.E.f2_target = target) rows in
    List.fold_left (fun acc p -> acc + p.E.f2_sop) 0 sel
    / List.length sel
  in
  (* SOP size decreases as complexity factor grows (the Figure 2 law). *)
  check "sop(0.3) > sop(0.6)" true (mean 0.3 > mean 0.6);
  check "sop(0.6) > sop(0.9)" true (mean 0.6 > mean 0.9)

let test_sweep_and_figures () =
  let rows =
    E.sweep ~fractions:[| 0.0; 1.0 |] ~names:[ "bench"; "fout" ] ()
  in
  check_int "two benchmarks" 2 (List.length rows);
  let fig4 = E.fig4_of_sweep rows in
  List.iter
    (fun (_, norms) ->
      Alcotest.(check (float 1e-9)) "normalised base" 1.0 norms.(0);
      check "error improves at full assignment" true (norms.(1) <= 1.0))
    fig4;
  let fig5 = E.fig5_of_sweep rows in
  check_int "two modes x two fractions" 4 (List.length fig5);
  List.iter
    (fun s ->
      let amin, _, _ = s.E.f5_min and amax, _, _ = s.E.f5_max in
      check "min <= max" true (amin <= amax +. 1e-9))
    fig5

let test_table2_high_cf_defers () =
  (* On the very high-Cf benchmarks the LCf rule must defer almost
     entirely (the t4/random3 behaviour of the paper's Table 2). *)
  let rows = E.table2 ~names:[ "t4" ] () in
  match rows with
  | [ r ] ->
      check "t4 area unchanged" true (abs_float r.E.t2_lcf_area < 1.0);
      check "t4 error unchanged" true (abs_float r.E.t2_lcf_er < 1.0)
  | _ -> Alcotest.fail "expected one row"

let test_table3_row () =
  let rows = E.table3 ~names:[ "bench" ] () in
  match rows with
  | [ r ] ->
      let xl, xh = r.E.t3_exact in
      let sl, sh = r.E.t3_signal in
      let bl, bh = r.E.t3_border in
      check "exact ordered" true (xl <= xh);
      check "signal ordered" true (sl <= sh);
      check "border ordered" true (bl <= bh);
      (* the paper's headline observations *)
      check "signal-based overshoots" true (sl > xl);
      check "border lo brackets" true (bl <= xl +. 0.02);
      check "conv rate within exact bounds" true
        (r.E.t3_conv_rate >= xl -. 1e-9 && r.E.t3_conv_rate <= xh +. 1e-9);
      check "gates positive" true (r.E.t3_gates > 0)
  | _ -> Alcotest.fail "expected one row"

let test_ablation_threshold_monotone () =
  let rows =
    E.ablation_threshold ~thresholds:[ 0.3; 0.8 ] ~name:"bench" ()
  in
  match rows with
  | [ (_, _, er_low); (_, _, er_high) ] ->
      check "higher threshold, at least as much ER improvement" true
        (er_high >= er_low -. 1.0)
  | _ -> Alcotest.fail "expected two rows"

let test_nodal_rows () =
  let rows = E.nodal_decomposition ~names:[ "bench" ] () in
  match rows with
  | [ (_, before, after) ] ->
      check "rates in range" true
        (before >= 0.0 && before <= 1.0 && after >= 0.0 && after <= 1.0)
  | _ -> Alcotest.fail "expected one row"

let suite =
  ( "flow",
    [
      Alcotest.test_case "strategy names" `Quick test_strategy_names;
      Alcotest.test_case "verified synthesis, all strategies x modes" `Quick
        test_verified_synthesize_all_strategies;
      Alcotest.test_case "error within exact bounds" `Quick
        test_error_within_exact_bounds;
      Alcotest.test_case "complete not worse than conventional" `Quick
        test_complete_not_worse_than_conventional;
      Alcotest.test_case "assigned fraction ordering" `Quick
        test_assigned_fraction_ordering;
      Alcotest.test_case "table1 rows match paper" `Slow test_table1_rows;
      Alcotest.test_case "fig2 monotone trend" `Slow test_fig2_trend;
      Alcotest.test_case "sweep and figure derivations" `Slow
        test_sweep_and_figures;
      Alcotest.test_case "table2: high-cf benchmarks defer" `Slow
        test_table2_high_cf_defers;
      Alcotest.test_case "table3 row invariants" `Slow test_table3_row;
      Alcotest.test_case "threshold ablation monotone" `Slow
        test_ablation_threshold_monotone;
      Alcotest.test_case "nodal decomposition rows" `Slow test_nodal_rows;
    ] )

(* Shared-cube (multi-output espresso) flow path. *)

let test_shared_flow_valid () =
  let spec = small_spec () in
  let b = ER.mean_bounds spec in
  List.iter
    (fun strategy ->
      let r =
        Flow.synthesize_shared ~mode:Techmap.Mapper.Area ~strategy spec
      in
      check
        (Flow.strategy_name strategy ^ " shared error within bounds")
        true
        (r.Flow.error_rate >= ER.min_rate b -. 1e-9
        && r.Flow.error_rate <= ER.max_rate b +. 1e-9))
    [ Flow.Conventional; Flow.Lcf 0.55 ]

let test_shared_netlist_matches_spec () =
  let spec = small_spec () in
  let full, mcubes = Flow.implement_shared (Pla.Spec.copy spec) in
  check "fully specified" true (Pla.Spec.is_fully_specified full);
  (* implementation agrees with the assigned spec everywhere *)
  let ok = ref true in
  for o = 0 to Pla.Spec.no spec - 1 do
    for m = 0 to Pla.Spec.size spec - 1 do
      if
        Espresso.Multi.eval ~n:(Pla.Spec.ni spec) mcubes ~o ~m
        <> Pla.Spec.output_value full ~o ~m
      then ok := false
    done
  done;
  check "mcubes = assigned spec" true !ok

let test_shared_fewer_cubes () =
  (* Joint minimisation should never need more product terms than the
     sum of per-output covers on a benchmark with correlated outputs. *)
  let spec = Synthetic.Suite.load_by_name "bench" in
  let _, singles = Flow.implement (Pla.Spec.copy spec) in
  let single_total =
    List.fold_left (fun acc c -> acc + Twolevel.Cover.size c) 0 singles
  in
  let _, mcubes = Flow.implement_shared (Pla.Spec.copy spec) in
  check "sharing helps or matches" true
    (List.length mcubes <= single_total)

let shared_cases =
  [
    Alcotest.test_case "shared flow within bounds" `Slow test_shared_flow_valid;
    Alcotest.test_case "shared implementation matches spec" `Quick
      test_shared_netlist_matches_spec;
    Alcotest.test_case "sharing reduces cube total" `Slow
      test_shared_fewer_cubes;
  ]

let suite = (fst suite, snd suite @ shared_cases)

(* Hardened failure paths: structured errors, the espresso budget with
   unminimized-cover fallback, and the netlist carried in the result. *)

let test_load_spec_suite () =
  match Flow.load_spec "bench" with
  | Ok s -> check_int "bench is 6-input" 6 (Pla.Spec.ni s)
  | Error e -> Alcotest.failf "unexpected error: %s" (Flow.error_to_string e)

let test_load_spec_file () =
  let path = Filename.temp_file "rdca_test" ".pla" in
  let oc = open_out path in
  output_string oc ".i 2\n.o 1\n11 1\n.e\n";
  close_out oc;
  let r = Flow.load_spec path in
  Sys.remove path;
  match r with
  | Ok s -> check_int "parsed from file" 2 (Pla.Spec.ni s)
  | Error e -> Alcotest.failf "unexpected error: %s" (Flow.error_to_string e)

let test_load_spec_unknown_benchmark () =
  match Flow.load_spec "rando" with
  | Error (Flow.Unknown_benchmark { name; suggestions }) ->
      Alcotest.(check string) "name echoed" "rando" name;
      check "suggests the random* benchmarks" true
        (List.mem "random1" suggestions)
  | Error e -> Alcotest.failf "wrong error: %s" (Flow.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Unknown_benchmark"

let test_load_spec_missing_file () =
  match Flow.load_spec "/nonexistent/dir/x.pla" with
  | Error (Flow.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Flow.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Io_error"

let test_load_spec_parse_error () =
  let path = Filename.temp_file "rdca_test" ".pla" in
  let oc = open_out path in
  output_string oc ".i x\n.o 1\n.e\n";
  close_out oc;
  let r = Flow.load_spec path in
  Sys.remove path;
  match r with
  | Error (Flow.Parse_error { path = p; _ }) ->
      check "path reported" true (p <> "")
  | Error e -> Alcotest.failf "wrong error: %s" (Flow.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Parse_error"

(* A zero cube budget forces the unminimized fallback on every output;
   the run must still verify against the spec and report the
   degradations. *)
let test_budget_degrades_gracefully () =
  let spec = small_spec () in
  let budget = { Flow.max_cubes = Some 0; max_seconds = None } in
  let r =
    Flow.verified_synthesize ~budget ~mode:Techmap.Mapper.Area
      ~strategy:Flow.Conventional spec
  in
  check_int "every output degraded" (Pla.Spec.no spec)
    (List.length r.Flow.degradations);
  List.iter
    (fun d ->
      check "printable" true (String.length (Flow.degradation_to_string d) > 0))
    r.Flow.degradations;
  let b = ER.mean_bounds spec in
  check "error still within exact bounds" true
    (r.Flow.error_rate >= ER.min_rate b -. 1e-9
    && r.Flow.error_rate <= ER.max_rate b +. 1e-9);
  (* unminimized covers inflate the cube count vs the minimized run *)
  let minimized =
    Flow.synthesize ~mode:Techmap.Mapper.Area ~strategy:Flow.Conventional spec
  in
  check "no degradations without budget" true
    (minimized.Flow.degradations = []);
  check "fallback uses more cubes" true
    (r.Flow.sop_cubes >= minimized.Flow.sop_cubes)

(* The netlist in the result record is the one that was measured: its
   input-error rate recomputed from scratch matches [error_rate]. *)
let test_result_netlist_consistent () =
  let spec = small_spec () in
  let r =
    Flow.synthesize ~mode:Techmap.Mapper.Delay ~strategy:(Flow.Ranking 0.5) spec
  in
  Alcotest.(check (float 1e-9))
    "of_netlist agrees" r.Flow.error_rate
    (ER.of_netlist spec r.Flow.netlist)

let test_synthesize_result_ok () =
  let spec = small_spec () in
  match
    Flow.synthesize_result ~mode:Techmap.Mapper.Area
      ~strategy:Flow.Conventional spec
  with
  | Ok r -> check "area positive" true (r.Flow.report.Techmap.Report.area > 0.0)
  | Error e -> Alcotest.failf "unexpected error: %s" (Flow.error_to_string e)

let hardening_cases =
  [
    Alcotest.test_case "load_spec: suite benchmark" `Quick test_load_spec_suite;
    Alcotest.test_case "load_spec: .pla file" `Quick test_load_spec_file;
    Alcotest.test_case "load_spec: unknown benchmark suggests" `Quick
      test_load_spec_unknown_benchmark;
    Alcotest.test_case "load_spec: missing file" `Quick
      test_load_spec_missing_file;
    Alcotest.test_case "load_spec: parse error" `Quick
      test_load_spec_parse_error;
    Alcotest.test_case "budget degrades gracefully" `Quick
      test_budget_degrades_gracefully;
    Alcotest.test_case "result netlist consistent" `Quick
      test_result_netlist_consistent;
    Alcotest.test_case "synthesize_result ok" `Quick test_synthesize_result_ok;
  ]

let suite = (fst suite, snd suite @ hardening_cases)
