(* Gate-level fault injection: exact rates on hand-checked examples,
   agreement between the scalar and word-parallel evaluators,
   Monte-Carlo convergence, and argument validation. *)

module Spec = Pla.Spec
module Bv = Bitvec.Bv
module Inject = Reliability.Inject

let check = Alcotest.(check bool)
let check_f tol = Alcotest.(check (float tol))
let check_int = Alcotest.(check int)

(* The running example: a 2-input AND gate.  Node ids: inputs 0 and 1,
   the gate is node 2. *)
let and_netlist () =
  let nl = Netlist.create ~ni:2 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  Netlist.set_outputs nl [| a |];
  (nl, a)

let and_spec () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:3 Spec.On;
  s

let test_sites () =
  let nl, a = and_netlist () in
  check "sites are the internal gates" true (Inject.sites nl = [ a ]);
  (* constants are not injectable sites *)
  let nl2 = Netlist.create ~ni:1 in
  let c = Netlist.add nl2 (Netlist.Gate.Const true) [||] in
  let b = Netlist.add nl2 Netlist.Gate.And [| 0; c |] in
  Netlist.set_outputs nl2 [| b |];
  check "consts excluded" true (Inject.sites nl2 = [ b ])

let test_apply () =
  check "sa0" true (Inject.apply Inject.Stuck_at_0 true = false);
  check "sa1" true (Inject.apply Inject.Stuck_at_1 false = true);
  check "transient flips" true (Inject.apply Inject.Transient false = true);
  check "transient flips back" true (Inject.apply Inject.Transient true = false)

(* Hand-checked exact rates on the fully specified AND.  The correct
   output is 1 only at m=3; faults at the gate output change the
   output at 1 (sa0), 3 (sa1) and 4 (transient) of the 4 minterms. *)
let test_exact_rates_and () =
  let nl, a = and_netlist () in
  let s = and_spec () in
  check_f 1e-9 "sa0 = 1/4" 0.25
    (Inject.exact_rate s nl { Inject.node = a; kind = Inject.Stuck_at_0 });
  check_f 1e-9 "sa1 = 3/4" 0.75
    (Inject.exact_rate s nl { Inject.node = a; kind = Inject.Stuck_at_1 });
  check_f 1e-9 "transient = 1" 1.0
    (Inject.exact_rate s nl { Inject.node = a; kind = Inject.Transient });
  (* A transient on input 0 propagates through the AND iff input 1 is
     high: minterms 2 and 3, rate 1/2. *)
  check_f 1e-9 "transient at input" 0.5
    (Inject.exact_rate s nl { Inject.node = 0; kind = Inject.Transient })

(* Don't-care minterms never count as propagation events. *)
let test_dc_masking () =
  let nl, a = and_netlist () in
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:3 Spec.Dc;
  (* sa0 only differs at m=3, which is a DC: rate 0 *)
  check_f 1e-9 "sa0 fully masked" 0.0
    (Inject.exact_rate s nl { Inject.node = a; kind = Inject.Stuck_at_0 });
  (* transient differs everywhere; only the 3 care minterms count *)
  check_f 1e-9 "transient on care set" 0.75
    (Inject.exact_rate s nl { Inject.node = a; kind = Inject.Transient })

(* The word-parallel faulty tables must agree with the scalar
   minterm evaluator on every (kind, minterm) pair of a multi-level
   netlist. *)
let test_tables_match_scalar () =
  let nl = Netlist.create ~ni:3 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  let x = Netlist.add nl Netlist.Gate.Xor [| a; 2 |] in
  let n = Netlist.add nl Netlist.Gate.Not [| a |] in
  Netlist.set_outputs nl [| x; n |];
  List.iter
    (fun node ->
      List.iter
        (fun kind ->
          let fault = { Inject.node; kind } in
          let tables = Inject.faulty_tables nl fault in
          for m = 0 to 7 do
            let outs = Inject.eval_minterm nl fault m in
            Array.iteri
              (fun o table ->
                check
                  (Printf.sprintf "node %d %s m=%d o=%d" node
                     (Inject.kind_name kind) m o)
                  true
                  (Bv.get table m = outs.(o)))
              tables
          done)
        Inject.all_kinds)
    (Inject.sites nl)

let test_mc_converges_to_exact () =
  let nl, a = and_netlist () in
  let s = and_spec () in
  List.iter
    (fun kind ->
      let fault = { Inject.node = a; kind } in
      let exact = Inject.exact_rate s nl fault in
      let rng = Random.State.make [| 7 |] in
      let mc = Inject.run ~rng ~trials:20000 s nl fault in
      check_int "trials recorded" 20000 mc.Inject.trials;
      check_f 1e-9 "rate = propagated / events"
        (float_of_int mc.Inject.propagated /. 20000.0)
        mc.Inject.rate;
      check (Inject.kind_name kind) true
        (abs_float (mc.Inject.rate -. exact) < 0.02))
    Inject.all_kinds

let test_mc_deterministic () =
  let nl, a = and_netlist () in
  let s = and_spec () in
  let fault = { Inject.node = a; kind = Inject.Stuck_at_1 } in
  let run () =
    Inject.run ~rng:(Random.State.make [| 42; a; 1 |]) ~trials:500 s nl fault
  in
  check "same seed, same result" true (run () = run ())

let expect_invalid label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  | exception Invalid_argument _ -> ()

let test_validation () =
  let nl, a = and_netlist () in
  let s = and_spec () in
  let fault = { Inject.node = a; kind = Inject.Stuck_at_0 } in
  let rng () = Random.State.make [| 1 |] in
  expect_invalid "trials = 0" (fun () ->
      Inject.run ~rng:(rng ()) ~trials:0 s nl fault);
  expect_invalid "trials < 0" (fun () ->
      Inject.run ~rng:(rng ()) ~trials:(-5) s nl fault);
  let wide = Spec.create ~ni:3 ~no:1 ~default:Spec.On in
  expect_invalid "input mismatch" (fun () ->
      Inject.run ~rng:(rng ()) ~trials:10 wide nl fault);
  expect_invalid "exact input mismatch" (fun () ->
      Inject.exact_rate wide nl fault);
  expect_invalid "bad node id" (fun () ->
      Inject.exact_rate s nl { Inject.node = 99; kind = Inject.Stuck_at_0 });
  expect_invalid "negative node id" (fun () ->
      Inject.eval_minterm nl { Inject.node = -1; kind = Inject.Transient } 0)

let prop_kind_names_roundtrip =
  QCheck.Test.make ~name:"kind names round-trip" ~count:30
    (QCheck.oneofl Inject.all_kinds)
    (fun k -> Inject.kind_of_name (Inject.name_of_kind k) = Some k)

let suite =
  ( "inject",
    [
      Alcotest.test_case "sites" `Quick test_sites;
      Alcotest.test_case "apply" `Quick test_apply;
      Alcotest.test_case "exact rates on AND" `Quick test_exact_rates_and;
      Alcotest.test_case "dc masking" `Quick test_dc_masking;
      Alcotest.test_case "tables match scalar eval" `Quick
        test_tables_match_scalar;
      Alcotest.test_case "monte-carlo converges" `Quick
        test_mc_converges_to_exact;
      Alcotest.test_case "monte-carlo deterministic" `Quick
        test_mc_deterministic;
      Alcotest.test_case "validation" `Quick test_validation;
      QCheck_alcotest.to_alcotest prop_kind_names_roundtrip;
    ] )
