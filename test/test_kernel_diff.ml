(* Differential tests for the word-parallel kernel engine: every
   rewired metric must agree bit-for-bit with its scalar oracle, at
   one worker domain and at several.  Floats are compared with [=] —
   the kernels are integer-exact, so "close" is not good enough. *)

module Spec = Pla.Spec
module Bv = Bitvec.Bv
module K = Bv.Kernel
module ER = Reliability.Error_rate
module Borders = Reliability.Borders
module Metrics = Rdca_core.Metrics
module Assign = Rdca_core.Assign
module Pool = Parallel.Pool

let check = Alcotest.(check bool)
let check_f tol = Alcotest.(check (float tol))
let jobs_grid = [ 1; 4 ]

(* Random (ni, phases) with 1 <= ni <= 6 — large enough to cross the
   63-bit word boundary (ni = 6 gives 64 minterms), small enough for
   the scalar sweeps to stay fast. *)
let gen_spec =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    list_repeat (1 lsl n) (int_bound 2) >>= fun phases ->
    return (n, phases))

let arb_spec =
  QCheck.make
    ~print:(fun (n, ps) ->
      Printf.sprintf "ni=%d phases=%s" n
        (String.concat "" (List.map string_of_int ps)))
    gen_spec

let spec_of (n, phases) =
  let s = Spec.create ~ni:n ~no:1 ~default:Spec.Off in
  List.iteri
    (fun m p ->
      Spec.set s ~o:0 ~m
        (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
    phases;
  s

let impl_of (n, seed) =
  let size = 1 lsl n in
  let impl = Bv.create size in
  for m = 0 to size - 1 do
    if (seed lsr (m land 30)) land 1 = (m land 1) lor ((m lsr 3) land 1) then
      Bv.set impl m
  done;
  impl

(* Run [f] under every job count of the grid with the kernel engine
   on, and require each result to equal [oracle] (computed once with
   the engine off, single-threaded). *)
let kernel_equals_oracle ~oracle f =
  let reference = Pool.with_jobs 1 (fun () -> K.with_mode false oracle) in
  List.for_all
    (fun j -> Pool.with_jobs j (fun () -> K.with_mode true f) = reference)
    jobs_grid

let prop_of_table =
  QCheck.Test.make ~name:"kernel of_table = scalar oracle (jobs 1,4)"
    ~count:100
    QCheck.(pair arb_spec (int_bound 0x3fffffff))
    (fun ((n, phases), seed) ->
      let s = spec_of (n, phases) in
      let impl = impl_of (n, seed) in
      kernel_equals_oracle
        ~oracle:(fun () -> ER.of_table_scalar s ~o:0 ~impl)
        (fun () -> ER.of_table s ~o:0 ~impl))

let prop_bounds =
  QCheck.Test.make ~name:"kernel bounds = scalar oracle (jobs 1,4)"
    ~count:100 arb_spec (fun sp ->
      let s = spec_of sp in
      kernel_equals_oracle
        ~oracle:(fun () -> ER.bounds_scalar s ~o:0)
        (fun () -> ER.bounds s ~o:0))

let prop_neighbour_counts_batch =
  QCheck.Test.make
    ~name:"kernel neighbour_counts_batch = per-minterm scalar (jobs 1,4)"
    ~count:100 arb_spec (fun sp ->
      let s = spec_of sp in
      kernel_equals_oracle
        ~oracle:(fun () ->
          let size = Spec.size s in
          let on = Array.make size 0
          and off = Array.make size 0
          and dc = Array.make size 0 in
          for m = 0 to size - 1 do
            let o_, f_, d_ = Spec.neighbour_counts s ~o:0 ~m in
            on.(m) <- o_;
            off.(m) <- f_;
            dc.(m) <- d_
          done;
          (on, off, dc))
        (fun () -> Spec.neighbour_counts_batch s ~o:0))

let prop_complexity_factor =
  QCheck.Test.make
    ~name:"kernel same_phase_pairs & border_counts = scalar (jobs 1,4)"
    ~count:100 arb_spec (fun sp ->
      let s = spec_of sp in
      kernel_equals_oracle
        ~oracle:(fun () ->
          (Borders.same_phase_pairs_scalar s ~o:0,
           Borders.border_counts_scalar s ~o:0))
        (fun () ->
          (Borders.same_phase_pairs s ~o:0, Borders.border_counts s ~o:0)))

let prop_lcf_batch =
  QCheck.Test.make
    ~name:"kernel local_complexity_factors = scalar sweep (jobs 1,4)"
    ~count:100 arb_spec (fun sp ->
      let s = spec_of sp in
      kernel_equals_oracle
        ~oracle:(fun () ->
          Array.init (Spec.size s) (fun m ->
              Borders.local_complexity_factor s ~o:0 ~m))
        (fun () -> Borders.local_complexity_factors s ~o:0))

let prop_ranking_weights =
  QCheck.Test.make
    ~name:"kernel dc_ranking & ranking assignment = scalar (jobs 1,4)"
    ~count:100 arb_spec (fun sp ->
      let s = spec_of sp in
      let ranking_ok =
        kernel_equals_oracle
          ~oracle:(fun () -> Metrics.dc_ranking s ~o:0)
          (fun () -> Metrics.dc_ranking s ~o:0)
      in
      let reference =
        Pool.with_jobs 1 (fun () ->
            K.with_mode false (fun () -> Assign.ranking ~fraction:0.5 s))
      in
      let assign_ok =
        List.for_all
          (fun j ->
            Pool.with_jobs j (fun () ->
                K.with_mode true (fun () ->
                    Spec.equal (Assign.ranking ~fraction:0.5 s) reference)))
          jobs_grid
      in
      ranking_ok && assign_ok)

(* ------------------------------------------------------------------ *)
(* The cache-blocked neighbour sweep must be bit-identical to
   composing the word-at-a-time kernels it fuses — neighbor /
   neighbor_diff with popcount_and and counter_add_bit — at every
   tile size, operand count and op shape (diff or plain plane,
   with/without cross mask, with/without counter). *)

let sweep_reference ~nj ops =
  let nops = Array.length ops in
  let accs = Array.make nops 0 in
  for j = 0 to nj - 1 do
    Array.iteri
      (fun oi op ->
        let plane =
          if op.K.sw_diff then K.neighbor_diff ~j op.K.sw_src
          else K.neighbor ~j op.K.sw_src
        in
        (match op.K.sw_cross with
        | Some x -> accs.(oi) <- accs.(oi) + K.popcount_and plane x
        | None -> ());
        match op.K.sw_counter with
        | Some c -> K.counter_add_bit c plane
        | None -> ())
      ops
  done;
  accs

let prop_neighbour_sweep =
  QCheck.Test.make
    ~name:"tiled neighbour_sweep = composed neighbor/popcount/counter kernels"
    ~count:150
    QCheck.(
      quad (int_range 1 6) (int_range 1 3) (int_range 1 8) small_int)
    (fun (nj, blocks, tile, seed) ->
      let len = blocks * (1 lsl nj) in
      let rng = Random.State.make [| seed; nj; blocks; tile |] in
      let rand_bv () = Bv.random ~rng len ~density:0.4 in
      let nops = 1 + Random.State.int rng 3 in
      (* One description, two independent instantiations: the sweep
         and the reference both mutate their own counters. *)
      let descr =
        Array.init nops (fun _ ->
            ( Random.State.bool rng,
              rand_bv (),
              (if Random.State.bool rng then Some (rand_bv ()) else None),
              Random.State.bool rng ))
      in
      let op_of (sw_diff, src, cross, with_counter) =
        {
          K.sw_src = src;
          sw_diff;
          sw_counter =
            (if with_counter then Some (K.counter_create ~len ~bits:6)
             else None);
          sw_cross = cross;
        }
      in
      let ops_a = Array.map op_of descr in
      let ops_b = Array.map op_of descr in
      let accs_a = K.neighbour_sweep ~tile ~nj ops_a in
      let accs_b = sweep_reference ~nj ops_b in
      let counters_agree =
        Array.for_all2
          (fun a b ->
            match (a.K.sw_counter, b.K.sw_counter) with
            | Some ca, Some cb -> K.counter_extract ca = K.counter_extract cb
            | None, None -> true
            | _ -> false)
          ops_a ops_b
      in
      accs_a = accs_b && counters_agree)

(* Regression: a spec with no inputs has no error events at all — the
   rate is 0, not 0/0 = NaN.  Both engines, plus the bounds. *)
let test_no_input_rate_is_zero () =
  let s = Spec.create ~ni:0 ~no:1 ~default:Spec.On in
  let impl = Bv.create 1 in
  Bv.set impl 0;
  List.iter
    (fun kernel ->
      K.with_mode kernel @@ fun () ->
      let r = ER.of_table s ~o:0 ~impl in
      check "rate is a number" false (Float.is_nan r);
      check_f 1e-9 "rate" 0.0 r;
      let b = ER.bounds s ~o:0 in
      check_f 1e-9 "base" 0.0 b.ER.base;
      check_f 1e-9 "min_dc" 0.0 b.ER.min_dc;
      check_f 1e-9 "max_dc" 0.0 b.ER.max_dc)
    [ false; true ];
  check_f 1e-9 "scalar oracle too" 0.0 (ER.of_table_scalar s ~o:0 ~impl)

(* A 0-input function is constant: its local complexity factor is 1,
   in the batch and per-minterm forms, under both engines. *)
let test_no_input_lcf () =
  let s = Spec.create ~ni:0 ~no:1 ~default:Spec.Dc in
  List.iter
    (fun kernel ->
      K.with_mode kernel @@ fun () ->
      check_f 1e-9 "per-minterm" 1.0
        (Borders.local_complexity_factor s ~o:0 ~m:0);
      let batch = Borders.local_complexity_factors s ~o:0 in
      Alcotest.(check int) "batch length" 1 (Array.length batch);
      check_f 1e-9 "batch" 1.0 batch.(0))
    [ false; true ]

let suite =
  ( "kernel-diff",
    [
      QCheck_alcotest.to_alcotest prop_of_table;
      QCheck_alcotest.to_alcotest prop_bounds;
      QCheck_alcotest.to_alcotest prop_neighbour_counts_batch;
      QCheck_alcotest.to_alcotest prop_complexity_factor;
      QCheck_alcotest.to_alcotest prop_lcf_batch;
      QCheck_alcotest.to_alcotest prop_ranking_weights;
      QCheck_alcotest.to_alcotest prop_neighbour_sweep;
      Alcotest.test_case "no-input spec: rate 0, not NaN" `Quick
        test_no_input_rate_is_zero;
      Alcotest.test_case "no-input spec: LCf = 1" `Quick test_no_input_lcf;
    ] )
