(* The parallel work pool: unit tests of the chunked operations,
   exception and nesting behaviour, plus differential tests pinning
   the determinism contract — every parallelised hot path must produce
   bit-identical results at every job count. *)

module Pool = Parallel.Pool
module Spec = Pla.Spec
module Bv = Bitvec.Bv
module ER = Reliability.Error_rate
module Campaign = Reliability.Campaign
module E = Rdca_flow.Experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] under each job count and return the results in order. *)
let at_jobs jobs f = List.map (fun j -> Pool.with_jobs j f) jobs

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (fun y -> y = x) rest

(* ------------------------------------------------------------------ *)
(* Pool unit tests. *)

let test_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * 37) mod 101 in
  let expected = Array.map f input in
  List.iter
    (fun j ->
      Pool.with_jobs j (fun () ->
          check (Printf.sprintf "map at %d jobs" j) true
            (Pool.map f input = expected)))
    [ 1; 2; 3; 4 ]

let test_chunk_sizes () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let expected = Array.init 23 (fun i -> i * i) in
      for chunk = 1 to 9 do
        check
          (Printf.sprintf "chunk %d" chunk)
          true
          (Pool.init ~pool ~chunk 23 (fun i -> i * i) = expected)
      done)

let test_empty_and_singleton () =
  Pool.with_jobs 4 (fun () ->
      check "empty map" true (Pool.map (fun x -> x + 1) [||] = [||]);
      check "empty init" true (Pool.init 0 (fun i -> i) = [||]);
      check "empty map_list" true (Pool.map_list (fun x -> x) [] = []);
      check "singleton" true (Pool.map_list string_of_int [ 7 ] = [ "7" ]))

let test_exception_propagates () =
  Pool.with_jobs 4 (fun () ->
      match Pool.init 100 (fun i -> if i = 37 then failwith "boom" else i) with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure msg -> check "message" true (msg = "boom"));
  (* The pool survives a failed region. *)
  Pool.with_jobs 4 (fun () ->
      check "usable after failure" true
        (Pool.init 10 (fun i -> i) = Array.init 10 (fun i -> i)))

let test_nested_runs_sequentially () =
  Pool.with_jobs 4 (fun () ->
      let expected = Array.init 8 (fun i -> Array.init 8 (fun j -> (i * 8) + j)) in
      let got =
        Pool.init 8 (fun i -> Pool.init 8 (fun j -> (i * 8) + j))
      in
      check "nested init" true (got = expected))

let test_map_list_order () =
  Pool.with_jobs 3 (fun () ->
      let words = [ "the"; "order"; "must"; "match"; "the"; "input" ] in
      check "order" true
        (Pool.map_list String.uppercase_ascii words
        = List.map String.uppercase_ascii words))

let test_with_jobs_restores () =
  let before = Pool.default_jobs () in
  Pool.with_jobs (before + 3) (fun () ->
      check_int "inside" (before + 3) (Pool.default_jobs ()));
  check_int "restored" before (Pool.default_jobs ());
  (match Pool.with_jobs (before + 1) (fun () -> failwith "x") with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  check_int "restored after exception" before (Pool.default_jobs ())

let test_validation () =
  (match Pool.create ~jobs:0 with
  | _ -> Alcotest.fail "create ~jobs:0 must raise"
  | exception Invalid_argument _ -> ());
  match Pool.set_default_jobs 0 with
  | _ -> Alcotest.fail "set_default_jobs 0 must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The tiny-batch fast path: a microsecond-scale region under the
   default (adaptive) chunking must finish sequentially — no batch
   published, no domain spawned, not even the shared pool
   instantiated — while a region with real per-item cost must still
   get dispatched as a parallel batch. *)

let test_tiny_batch_never_wakes_domains () =
  let attempt () =
    Pool.quiesce ();
    let s0 = Pool.stats () in
    let expected = Array.init 32 (fun i -> i * 3) in
    Pool.with_jobs 4 (fun () ->
        check "tiny map result" true (Pool.init 32 (fun i -> i * 3) = expected));
    let s1 = Pool.stats () in
    s1.Pool.batches = s0.Pool.batches
    && s1.Pool.domains_spawned = s0.Pool.domains_spawned
    && (not s1.Pool.pool_instantiated)
    && s1.Pool.sequential > s0.Pool.sequential
  in
  (* The dispatch decision rests on a ~20us wall-clock cost probe, so
     one attempt can be spoiled by a descheduling hiccup mid-probe; a
     real regression (tiny regions getting published) fails every
     attempt deterministically. *)
  check "tiny batch stayed sequential (no publish, no spawn)" true
    (attempt () || attempt () || attempt ())

let test_expensive_batch_publishes () =
  Pool.quiesce ();
  let s0 = Pool.stats () in
  let busy i =
    let acc = ref i in
    for k = 1 to 200_000 do
      acc := !acc + (k land 7)
    done;
    !acc
  in
  let expected = Array.init 64 busy in
  Pool.with_jobs 2 (fun () ->
      check "expensive map result" true (Pool.init 64 busy = expected));
  let s1 = Pool.stats () in
  check "batch published" true (s1.Pool.batches > s0.Pool.batches);
  check "cost probe consumed items" true
    (s1.Pool.probe_items > s0.Pool.probe_items);
  check "chunk gauge recorded" true (s1.Pool.last_chunk >= 1)

let prop_map_list_equivalence =
  QCheck.Test.make ~name:"map_list equals List.map at any job count"
    ~count:100
    QCheck.(pair (small_list small_int) (int_range 1 4))
    (fun (l, j) ->
      Pool.with_jobs j (fun () ->
          Pool.map_list (fun x -> (x * 2) - 1) l
          = List.map (fun x -> (x * 2) - 1) l))

(* ------------------------------------------------------------------ *)
(* Differential tests: the parallelised hot paths at jobs 1, 2 and 4. *)

let diff_jobs = [ 1; 2; 4 ]

(* A deterministic multi-output spec with a mix of on/off/DC. *)
let diff_spec () =
  let s = Spec.create ~ni:5 ~no:3 ~default:Spec.Off in
  let rng = Random.State.make [| 7 |] in
  for o = 0 to 2 do
    for m = 0 to 31 do
      Spec.set s ~o ~m
        (match Random.State.int rng 3 with
        | 0 -> Spec.Off
        | 1 -> Spec.On
        | _ -> Spec.Dc)
    done
  done;
  s

let test_diff_of_tables () =
  let s = diff_spec () in
  let tables = Array.init 3 (fun o -> Spec.on_bv s ~o) in
  check "of_tables identical across job counts" true
    (all_equal (at_jobs diff_jobs (fun () -> ER.of_tables s tables)))

let test_diff_mean_bounds () =
  let s = diff_spec () in
  check "mean_bounds identical across job counts" true
    (all_equal (at_jobs diff_jobs (fun () -> ER.mean_bounds s)))

(* The campaign fixture from test_campaign, kept small. *)
let campaign_fixture () =
  let nl = Netlist.create ~ni:3 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  let x = Netlist.add nl Netlist.Gate.Xor [| a; 2 |] in
  let n = Netlist.add nl Netlist.Gate.Nor [| a; 2 |] in
  Netlist.set_outputs nl [| x; n |];
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  for m = 0 to 7 do
    let outs = Netlist.eval_minterm nl m in
    for o = 0 to 1 do
      Spec.set s ~o ~m (if outs.(o) then Spec.On else Spec.Off)
    done
  done;
  Spec.set s ~o:0 ~m:5 Spec.Dc;
  Spec.set s ~o:1 ~m:2 Spec.Dc;
  (s, nl)

let strip (r : Campaign.report) =
  ( r.Campaign.results,
    r.Campaign.sites_total,
    r.Campaign.sites_done,
    r.Campaign.complete )

let test_diff_campaign () =
  let s, nl = campaign_fixture () in
  let config =
    { Campaign.default_config with Campaign.trials_per_site = 200 }
  in
  check "campaign identical across job counts" true
    (all_equal (at_jobs diff_jobs (fun () -> strip (Campaign.run config s nl))))

let test_diff_multi_espresso () =
  let s = diff_spec () in
  let ons = Array.init 3 (fun o -> Spec.on_bv s ~o) in
  let dcs = Array.init 3 (fun o -> Spec.dc_bv s ~o) in
  check "multi-output espresso identical across job counts" true
    (all_equal
       (at_jobs diff_jobs (fun () -> Espresso.Multi.minimize ~n:5 ~ons ~dcs)))

let test_diff_table3 () =
  check "table3 rows identical across job counts" true
    (all_equal (at_jobs diff_jobs (fun () -> E.table3 ~names:[ "bench" ] ())))

let suite =
  ( "parallel",
    [
      Alcotest.test_case "map matches sequential" `Quick
        test_map_matches_sequential;
      Alcotest.test_case "all chunk sizes agree" `Quick test_chunk_sizes;
      Alcotest.test_case "empty and singleton inputs" `Quick
        test_empty_and_singleton;
      Alcotest.test_case "task exception propagates" `Quick
        test_exception_propagates;
      Alcotest.test_case "nested regions run sequentially" `Quick
        test_nested_runs_sequentially;
      Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
      Alcotest.test_case "with_jobs restores the default" `Quick
        test_with_jobs_restores;
      Alcotest.test_case "job count validation" `Quick test_validation;
      Alcotest.test_case "tiny batch never wakes domains" `Quick
        test_tiny_batch_never_wakes_domains;
      Alcotest.test_case "expensive batch publishes" `Quick
        test_expensive_batch_publishes;
      QCheck_alcotest.to_alcotest prop_map_list_equivalence;
      Alcotest.test_case "diff: error-rate of_tables" `Quick
        test_diff_of_tables;
      Alcotest.test_case "diff: mean_bounds" `Quick test_diff_mean_bounds;
      Alcotest.test_case "diff: fault campaign" `Quick test_diff_campaign;
      Alcotest.test_case "diff: multi-output espresso" `Quick
        test_diff_multi_espresso;
      Alcotest.test_case "diff: table3 experiment" `Quick test_diff_table3;
    ] )
