(* Tests for the .pla parser and printer. *)

module Spec = Pla.Spec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let phase = Alcotest.testable
    (fun ppf -> function
      | Spec.On -> Format.pp_print_string ppf "On"
      | Spec.Off -> Format.pp_print_string ppf "Off"
      | Spec.Dc -> Format.pp_print_string ppf "Dc")
    ( = )

let sample_fd =
  ".i 3\n.o 2\n.ilb a b c\n.ob f g\n.p 3\n1-0 1-\n011 01\n000 -0\n.e\n"

let test_parse_fd () =
  let p = Pla.parse_string sample_fd in
  check_int "ni" 3 (Spec.ni p.spec);
  check_int "no" 2 (Spec.no p.spec);
  Alcotest.(check (array string)) "ilb" [| "a"; "b"; "c" |] p.input_names;
  Alcotest.(check (array string)) "ob" [| "f"; "g" |] p.output_names;
  (* line "1-0 1-": minterms with x0=1, x2=0: m=1 (001) and m=3 (011).
     Output 0 gets On, output 1 gets Dc. *)
  Alcotest.check phase "m1 o0" Spec.On (Spec.get p.spec ~o:0 ~m:1);
  Alcotest.check phase "m3 o0" Spec.On (Spec.get p.spec ~o:0 ~m:3);
  Alcotest.check phase "m1 o1" Spec.Dc (Spec.get p.spec ~o:1 ~m:1);
  (* line "011 01": m = x1=1,x2=1 -> 0b110 = 6; o0 '0' means nothing
     under fd (stays Off), o1 On. *)
  Alcotest.check phase "m6 o0" Spec.Off (Spec.get p.spec ~o:0 ~m:6);
  Alcotest.check phase "m6 o1" Spec.On (Spec.get p.spec ~o:1 ~m:6);
  (* line "000 -0": m=0, o0 Dc, o1 nothing (Off). *)
  Alcotest.check phase "m0 o0" Spec.Dc (Spec.get p.spec ~o:0 ~m:0);
  Alcotest.check phase "m0 o1" Spec.Off (Spec.get p.spec ~o:1 ~m:0);
  (* unmentioned minterm defaults to Off under fd *)
  Alcotest.check phase "m7 o0" Spec.Off (Spec.get p.spec ~o:0 ~m:7)

let test_parse_fr_default_dc () =
  let text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n" in
  let p = Pla.parse_string text in
  Alcotest.check phase "on" Spec.On (Spec.get p.spec ~o:0 ~m:3);
  Alcotest.check phase "off" Spec.Off (Spec.get p.spec ~o:0 ~m:0);
  Alcotest.check phase "unmentioned is dc" Spec.Dc (Spec.get p.spec ~o:0 ~m:1)

let test_parse_fdr () =
  let text = ".i 2\n.o 1\n.type fdr\n11 1\n0- -\n10 0\n.e\n" in
  let p = Pla.parse_string text in
  Alcotest.check phase "on" Spec.On (Spec.get p.spec ~o:0 ~m:3);
  Alcotest.check phase "dc m0" Spec.Dc (Spec.get p.spec ~o:0 ~m:0);
  Alcotest.check phase "dc m2" Spec.Dc (Spec.get p.spec ~o:0 ~m:2);
  Alcotest.check phase "off" Spec.Off (Spec.get p.spec ~o:0 ~m:1)

let test_comments_and_whitespace () =
  let text = "# header\n.i 1\n.o 1\n\n  # indented comment\n1 1 # trailing\n.e\n" in
  let p = Pla.parse_string text in
  Alcotest.check phase "on" Spec.On (Spec.get p.spec ~o:0 ~m:1)

let test_errors () =
  let expect_fail text =
    match Pla.parse_string text with
    | exception Pla.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_fail ".o 1\n1 1\n";
  expect_fail ".i 1\n1 1\n";
  expect_fail ".i 1\n.o 1\n11 1\n";
  expect_fail ".i 1\n.o 1\n1 11\n";
  expect_fail ".i 1\n.o 1\n.type zz\n1 1\n";
  expect_fail ".i 1\n.o 1\nx 1\n"

let test_roundtrip_fdr () =
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:1 Spec.On;
  Spec.set s ~o:0 ~m:2 Spec.Dc;
  Spec.set s ~o:1 ~m:7 Spec.On;
  Spec.set s ~o:1 ~m:0 Spec.Dc;
  let text = Pla.to_string s in
  let p = Pla.parse_string text in
  check "roundtrip preserves spec" true (Spec.equal s p.spec)

let test_roundtrip_fd () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:3 Spec.On;
  Spec.set s ~o:0 ~m:9 Spec.Dc;
  let text = Pla.to_string ~ty:Pla.Fd s in
  let p = Pla.parse_string text in
  check "fd roundtrip" true (Spec.equal s p.spec)

let test_file_roundtrip () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:0 Spec.On;
  let path = Filename.temp_file "rdca" ".pla" in
  Pla.write_file path s;
  let p = Pla.parse_file path in
  Sys.remove path;
  check "file roundtrip" true (Spec.equal s p.spec)

let prop_roundtrip =
  QCheck.Test.make ~name:"pla fdr roundtrip on random specs" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 16) (int_bound 2))
    (fun phases ->
      let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun m p ->
          Spec.set s ~o:0 ~m
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      Spec.equal s (Pla.parse_string (Pla.to_string s)).spec)

let suite =
  ( "pla",
    [
      Alcotest.test_case "parse fd sample" `Quick test_parse_fd;
      Alcotest.test_case "parse fr default dc" `Quick test_parse_fr_default_dc;
      Alcotest.test_case "parse fdr" `Quick test_parse_fdr;
      Alcotest.test_case "comments and whitespace" `Quick
        test_comments_and_whitespace;
      Alcotest.test_case "parse errors" `Quick test_errors;
      Alcotest.test_case "roundtrip fdr" `Quick test_roundtrip_fdr;
      Alcotest.test_case "roundtrip fd" `Quick test_roundtrip_fd;
      Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )

(* Cover-level writer. *)

let test_covers_writer_roundtrip () =
  let s = Spec.create ~ni:4 ~no:2 ~default:Spec.Off in
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.On) [ 1; 3; 5 ];
  List.iter (fun m -> Spec.set s ~o:0 ~m Spec.Dc) [ 7; 9 ];
  List.iter (fun m -> Spec.set s ~o:1 ~m Spec.On) [ 0; 15 ];
  let covers =
    List.init 2 (fun o -> (Spec.on_cover s ~o, Spec.dc_cover s ~o))
  in
  let text = Pla.to_string_covers ~ni:4 covers in
  let p = Pla.parse_string text in
  check "roundtrip" true (Spec.equal s p.Pla.spec)

let test_covers_writer_compact () =
  (* A minimised cover writes one line per cube, far fewer than one
     per minterm. *)
  let s = Spec.create ~ni:6 ~no:1 ~default:Spec.Off in
  for m = 0 to 31 do
    Spec.set s ~o:0 ~m Spec.On (* x5 = 0 half-space *)
  done;
  let on = Espresso.Dense.minimize ~n:6 ~on:(Spec.on_bv s ~o:0)
      ~dc:(Spec.dc_bv s ~o:0)
  in
  let text =
    Pla.to_string_covers ~ni:6 [ (on, Twolevel.Cover.empty ~n:6) ]
  in
  let lines = String.split_on_char '\n' text in
  check "under ten lines" true (List.length lines < 10);
  let p = Pla.parse_string text in
  check "function preserved" true (Spec.equal s p.Pla.spec)

let test_minimized_alias () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:5 Spec.On;
  let p = Pla.parse_string (Pla.to_string_minimized s) in
  check "alias works" true (Spec.equal s p.Pla.spec)

let cover_writer_cases =
  [
    Alcotest.test_case "covers writer roundtrip" `Quick
      test_covers_writer_roundtrip;
    Alcotest.test_case "covers writer compact" `Quick
      test_covers_writer_compact;
    Alcotest.test_case "to_string_minimized" `Quick test_minimized_alias;
  ]

let suite = (fst suite, snd suite @ cover_writer_cases)

(* Malformed inputs must surface as structured errors (Parse_error, or
   Error via the _res API) — never as Failure, Invalid_argument or any
   other escaping exception. *)

let expect_parse_error label text =
  match Pla.parse_string text with
  | _ -> Alcotest.failf "%s: expected Parse_error" label
  | exception Pla.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: escaped with %s instead of Parse_error" label
        (Printexc.to_string e)

let test_truncated_headers () =
  expect_parse_error "bare .i" ".i\n.o 1\n.e\n";
  expect_parse_error "bare .o" ".i 1\n.o\n.e\n";
  expect_parse_error "non-integer .i" ".i three\n.o 1\n.e\n";
  expect_parse_error "non-integer .o" ".i 1\n.o x\n.e\n";
  expect_parse_error "two-arg .i" ".i 1 2\n.o 1\n.e\n";
  expect_parse_error "negative .i" ".i -4\n.o 1\n.e\n";
  expect_parse_error "zero outputs" ".i 1\n.o 0\n.e\n";
  expect_parse_error "oversized .i" ".i 21\n.o 1\n.e\n";
  expect_parse_error "bare .type" ".i 1\n.o 1\n.type\n.e\n"

let test_wrong_width_rows () =
  expect_parse_error "input row too long" ".i 2\n.o 1\n111 1\n.e\n";
  expect_parse_error "input row too short" ".i 3\n.o 1\n11 1\n.e\n";
  expect_parse_error "output part too long" ".i 2\n.o 1\n11 11\n.e\n";
  expect_parse_error "output part missing" ".i 2\n.o 1\n11\n.e\n";
  expect_parse_error "three fields" ".i 2\n.o 1\n11 1 1\n.e\n"

let test_illegal_characters () =
  expect_parse_error "bad input char" ".i 2\n.o 1\nx1 1\n.e\n";
  expect_parse_error "bad output char" ".i 2\n.o 1\n11 z\n.e\n";
  expect_parse_error "bad type" ".i 2\n.o 1\n.type qq\n11 1\n.e\n";
  expect_parse_error "unknown directive" ".i 2\n.o 1\n.magic\n11 1\n.e\n"

let test_result_api () =
  (match Pla.parse_string_res ".i\n.o 1\n.e\n" with
  | Error msg -> check "message mentions .i" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected Error");
  (match Pla.parse_string_res sample_fd with
  | Ok p -> check_int "ok parse" 3 (Spec.ni p.Pla.spec)
  | Error msg -> Alcotest.failf "unexpected error: %s" msg);
  match Pla.parse_file_res "/nonexistent/path/f.pla" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error for missing file"

let malformed_cases =
  [
    Alcotest.test_case "truncated headers" `Quick test_truncated_headers;
    Alcotest.test_case "wrong-width rows" `Quick test_wrong_width_rows;
    Alcotest.test_case "illegal characters" `Quick test_illegal_characters;
    Alcotest.test_case "result api" `Quick test_result_api;
  ]

let suite = (fst suite, snd suite @ malformed_cases)
