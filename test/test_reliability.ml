(* Tests for error rates, complexity factors, borders, and the
   analytical estimates — including regression checks against numbers
   derivable from the paper. *)

module Spec = Pla.Spec
module Bv = Bitvec.Bv
module ER = Reliability.Error_rate
module Borders = Reliability.Borders
module Stats = Reliability.Stats
module Estimate = Reliability.Estimate

let check = Alcotest.(check bool)
let check_f tol = Alcotest.(check (float tol))

(* The running 2-input example: m0=On, m1=Off, m2=Dc, m3=On. *)
let small_spec () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:0 Spec.On;
  Spec.set s ~o:0 ~m:2 Spec.Dc;
  Spec.set s ~o:0 ~m:3 Spec.On;
  s

let test_bounds_small () =
  let s = small_spec () in
  let b = ER.bounds s ~o:0 in
  check_f 1e-9 "base" 0.5 b.ER.base;
  check_f 1e-9 "min_dc" 0.0 b.ER.min_dc;
  check_f 1e-9 "max_dc" 0.25 b.ER.max_dc;
  check_f 1e-9 "min rate" 0.5 (ER.min_rate b);
  check_f 1e-9 "max rate" 0.75 (ER.max_rate b)

let test_of_table_small () =
  let s = small_spec () in
  (* assign the DC to 1: reaches the minimum *)
  let impl = Bv.of_list 4 [ 0; 2; 3 ] in
  check_f 1e-9 "dc=1 rate" 0.5 (ER.of_table s ~o:0 ~impl);
  (* assign the DC to 0: reaches the maximum *)
  let impl = Bv.of_list 4 [ 0; 3 ] in
  check_f 1e-9 "dc=0 rate" 0.75 (ER.of_table s ~o:0 ~impl)

let test_of_spec_assigned () =
  let s = small_spec () in
  Spec.assign_dc s ~o:0 ~m:2 true;
  check_f 1e-9 "assigned" 0.5 (ER.of_spec_assigned s ~o:0)

let test_constant_function_zero_rate () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.On in
  check_f 1e-9 "no errors" 0.0 (ER.min_rate (ER.bounds s ~o:0));
  let impl = Bv.create 8 in
  Bv.fill impl true;
  check_f 1e-9 "impl rate" 0.0 (ER.of_table s ~o:0 ~impl)

let test_parity_worst_case () =
  (* Fully specified parity: every input error propagates. *)
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  for m = 0 to 15 do
    if Bitvec.Minterm.popcount m mod 2 = 1 then Spec.set s ~o:0 ~m Spec.On
  done;
  let b = ER.bounds s ~o:0 in
  check_f 1e-9 "parity base" 1.0 b.ER.base;
  check_f 1e-9 "parity cf" 0.0 (Borders.complexity_factor s ~o:0)

let test_complexity_factor_extremes () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.On in
  check_f 1e-9 "constant cf = 1" 1.0 (Borders.complexity_factor s ~o:0);
  check_f 1e-9 "constant E[cf] = 1" 1.0
    (Borders.expected_complexity_factor s ~o:0)

let test_expected_cf_formula () =
  let s = small_spec () in
  (* f1 = 1/2, f0 = 1/4, fdc = 1/4 -> E = .25 + .0625 + .0625 = .375 *)
  check_f 1e-9 "expected cf" 0.375 (Borders.expected_complexity_factor s ~o:0)

let test_border_invariant () =
  let s = small_spec () in
  let { Borders.b0; b1; bdc } = Borders.border_counts s ~o:0 in
  let total = float_of_int (2 * 4) in
  check_f 1e-9 "1 - cf = borders/total"
    (1.0 -. Borders.complexity_factor s ~o:0)
    (float_of_int (b0 + b1 + bdc) /. total)

let test_local_cf_constant () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  check_f 1e-9 "constant local cf" 1.0
    (Borders.local_complexity_factor s ~o:0 ~m:0)

let test_stats_erf () =
  check_f 1e-6 "erf 0" 0.0 (Stats.erf 0.0);
  check_f 1e-4 "erf 1" 0.8427 (Stats.erf 1.0);
  check_f 1e-4 "erf -1" (-0.8427) (Stats.erf (-1.0));
  check_f 1e-6 "erf inf" 1.0 (Stats.erf 10.0)

let test_stats_folded () =
  (* E|X| for standard normal = sqrt(2/pi) ~ .7979 *)
  check_f 1e-4 "standard folded" 0.7979
    (Stats.folded_normal_mean ~mu:0.0 ~sigma:1.0);
  (* With huge mean, E|X| ~ mu. *)
  check_f 1e-3 "large mu" 100.0 (Stats.folded_normal_mean ~mu:100.0 ~sigma:1.0);
  check_f 1e-9 "sigma 0" 3.0 (Stats.folded_normal_mean ~mu:(-3.0) ~sigma:0.0)

let test_stats_poisson () =
  check_f 1e-9 "P(0;0)" 1.0 (Stats.poisson_pmf ~lambda:0.0 0);
  check_f 1e-6 "P(0;1)" (exp (-1.0)) (Stats.poisson_pmf ~lambda:1.0 0);
  check_f 1e-6 "P(2;3)" (4.5 *. exp (-3.0)) (Stats.poisson_pmf ~lambda:3.0 2);
  (* pmf sums to ~1 *)
  let s = ref 0.0 in
  for k = 0 to 60 do
    s := !s +. Stats.poisson_pmf ~lambda:5.0 k
  done;
  check_f 1e-9 "sums to 1" 1.0 !s

(* Regression against the paper: a 12-input function with the random1
   signal profile (f1 = f0 ~ .157, fdc ~ .686) must give the
   signal-based interval ~ [.347, .436] reported in Table 3. *)
let test_signal_estimate_random1_profile () =
  let s = Spec.create ~ni:12 ~no:1 ~default:Spec.Dc in
  (* deterministically scatter 643 on and 643 off minterms *)
  let rng = Random.State.make [| 7 |] in
  let assigned = ref 0 in
  while !assigned < 643 do
    let m = Random.State.int rng 4096 in
    if Spec.get s ~o:0 ~m = Spec.Dc then begin
      Spec.set s ~o:0 ~m Spec.On;
      incr assigned
    end
  done;
  assigned := 0;
  while !assigned < 643 do
    let m = Random.State.int rng 4096 in
    if Spec.get s ~o:0 ~m = Spec.Dc then begin
      Spec.set s ~o:0 ~m Spec.Off;
      incr assigned
    end
  done;
  let iv = Estimate.signal_based s ~o:0 in
  check_f 0.01 "lo ~ .347" 0.347 iv.Estimate.lo;
  check_f 0.01 "hi ~ .436" 0.436 iv.Estimate.hi;
  (* For a function this random, the border-based estimate should also
     bracket the exact bounds (the paper's observation). *)
  let exact = ER.bounds s ~o:0 in
  let biv = Estimate.border_based s ~o:0 in
  check "border lo below exact min" true
    (biv.Estimate.lo <= ER.min_rate exact +. 0.02);
  check "border hi above exact max" true
    (biv.Estimate.hi >= ER.max_rate exact -. 0.02)

let test_estimates_no_dc () =
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  for m = 0 to 7 do
    Spec.set s ~o:0 ~m Spec.On
  done;
  let iv = Estimate.signal_based s ~o:0 in
  check_f 1e-9 "lo = hi without dc" iv.Estimate.lo iv.Estimate.hi;
  let biv = Estimate.border_based s ~o:0 in
  check_f 1e-9 "border lo = hi" biv.Estimate.lo biv.Estimate.hi

(* Random specs: ordering and consistency invariants. *)

let gen_phases n =
  QCheck.Gen.(list_repeat (1 lsl n) (int_bound 2))

let spec_of_phases n phases =
  let s = Spec.create ~ni:n ~no:1 ~default:Spec.Off in
  List.iteri
    (fun m p ->
      Spec.set s ~o:0 ~m
        (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
    phases;
  s

let arb_phases n = QCheck.make (gen_phases n)

let prop_bounds_ordered =
  QCheck.Test.make ~name:"min_dc <= max_dc always" ~count:200 (arb_phases 5)
    (fun phases ->
      let s = spec_of_phases 5 phases in
      let b = ER.bounds s ~o:0 in
      b.ER.min_dc <= b.ER.max_dc +. 1e-12)

let prop_assignment_within_bounds =
  QCheck.Test.make ~name:"any DC assignment lands within exact bounds"
    ~count:200
    QCheck.(pair (arb_phases 4) (int_bound 0xffff))
    (fun (phases, mask) ->
      let s = spec_of_phases 4 phases in
      let b = ER.bounds s ~o:0 in
      (* assign DCs by mask bits *)
      let impl = Bv.create 16 in
      for m = 0 to 15 do
        (match Spec.get s ~o:0 ~m with
        | Spec.On -> Bv.set impl m
        | Spec.Off -> ()
        | Spec.Dc -> if mask land (1 lsl m) <> 0 then Bv.set impl m)
      done;
      let r = ER.of_table s ~o:0 ~impl in
      r >= ER.min_rate b -. 1e-12 && r <= ER.max_rate b +. 1e-12)

let prop_estimate_intervals_ordered =
  QCheck.Test.make ~name:"estimate intervals are ordered" ~count:200
    (arb_phases 5) (fun phases ->
      let s = spec_of_phases 5 phases in
      let a = Estimate.signal_based s ~o:0 in
      let b = Estimate.border_based s ~o:0 in
      let c = Estimate.binomial_border_based s ~o:0 in
      a.Estimate.lo <= a.Estimate.hi +. 1e-9
      && b.Estimate.lo <= b.Estimate.hi +. 1e-9
      && c.Estimate.lo <= c.Estimate.hi +. 1e-9)

let prop_cf_border_invariant =
  QCheck.Test.make ~name:"complexity factor + border fraction = 1"
    ~count:200 (arb_phases 5) (fun phases ->
      let s = spec_of_phases 5 phases in
      let { Borders.b0; b1; bdc } = Borders.border_counts s ~o:0 in
      let total = float_of_int (5 * 32) in
      abs_float
        (1.0
        -. Borders.complexity_factor s ~o:0
        -. (float_of_int (b0 + b1 + bdc) /. total))
      < 1e-9)

let prop_lcf_range =
  QCheck.Test.make ~name:"local complexity factor lies in [0,1]" ~count:100
    QCheck.(pair (arb_phases 4) (int_bound 15))
    (fun (phases, m) ->
      let s = spec_of_phases 4 phases in
      let lcf = Borders.local_complexity_factor s ~o:0 ~m in
      lcf >= 0.0 && lcf <= 1.0)

let test_fault_sim_converges () =
  (* A mapped-free sanity check: simulate a simple netlist and compare
     Monte-Carlo with the exact rate. *)
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  for m = 0 to 15 do
    if m land 3 = 3 then Spec.set s ~o:0 ~m Spec.On
  done;
  let nl = Netlist.create ~ni:4 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  Netlist.set_outputs nl [| a |];
  let exact = ER.of_netlist s nl in
  let rng = Random.State.make [| 99 |] in
  let mc = Reliability.Fault_sim.run ~rng ~trials:20000 s nl in
  check "mc close to exact" true
    (abs_float (mc.Reliability.Fault_sim.rate -. exact) < 0.02)

let suite =
  ( "reliability",
    [
      Alcotest.test_case "exact bounds on small example" `Quick
        test_bounds_small;
      Alcotest.test_case "error rate of assignments" `Quick test_of_table_small;
      Alcotest.test_case "of_spec_assigned" `Quick test_of_spec_assigned;
      Alcotest.test_case "constant function has zero rate" `Quick
        test_constant_function_zero_rate;
      Alcotest.test_case "parity is worst case" `Quick test_parity_worst_case;
      Alcotest.test_case "complexity factor extremes" `Quick
        test_complexity_factor_extremes;
      Alcotest.test_case "expected cf formula" `Quick test_expected_cf_formula;
      Alcotest.test_case "border invariant" `Quick test_border_invariant;
      Alcotest.test_case "local cf of constant" `Quick test_local_cf_constant;
      Alcotest.test_case "erf" `Quick test_stats_erf;
      Alcotest.test_case "folded normal mean" `Quick test_stats_folded;
      Alcotest.test_case "poisson pmf" `Quick test_stats_poisson;
      Alcotest.test_case "signal estimate matches paper's random1 profile"
        `Quick test_signal_estimate_random1_profile;
      Alcotest.test_case "estimates without dc collapse" `Quick
        test_estimates_no_dc;
      Alcotest.test_case "fault sim converges" `Quick test_fault_sim_converges;
      QCheck_alcotest.to_alcotest prop_bounds_ordered;
      QCheck_alcotest.to_alcotest prop_assignment_within_bounds;
      QCheck_alcotest.to_alcotest prop_estimate_intervals_ordered;
      QCheck_alcotest.to_alcotest prop_cf_border_invariant;
      QCheck_alcotest.to_alcotest prop_lcf_range;
    ] )

(* Symbolic (BDD) analysis agrees with the dense path and scales past
   the dense limit. *)

module Sym = Reliability.Sym

let test_sym_matches_dense () =
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 10 do
    let s = Spec.create ~ni:6 ~no:1 ~default:Spec.Off in
    for m = 0 to 63 do
      Spec.set s ~o:0 ~m
        (match Random.State.int rng 3 with
        | 0 -> Spec.Off
        | 1 -> Spec.On
        | _ -> Spec.Dc)
    done;
    let man = Bdd.make_man ~nvars:6 in
    let sets = Sym.of_spec man s ~o:0 in
    (match Sym.validate man sets with
    | None -> ()
    | Some msg -> Alcotest.fail msg);
    let st = Sym.stats man sets in
    let f1, f0, fdc = Spec.signal_probs s ~o:0 in
    check_f 1e-9 "f1" f1 st.Sym.f1;
    check_f 1e-9 "f0" f0 st.Sym.f0;
    check_f 1e-9 "fdc" fdc st.Sym.fdc;
    let { Borders.b0; b1; bdc } = Borders.border_counts s ~o:0 in
    check_f 1e-9 "b0" (float_of_int b0) st.Sym.b0;
    check_f 1e-9 "b1" (float_of_int b1) st.Sym.b1;
    check_f 1e-9 "bdc" (float_of_int bdc) st.Sym.bdc;
    check_f 1e-9 "cf" (Borders.complexity_factor s ~o:0) st.Sym.cf;
    let b = ER.bounds s ~o:0 in
    check_f 1e-9 "base rate" b.ER.base st.Sym.base_rate;
    let si = Sym.signal_interval man sets in
    let si' = Estimate.signal_based s ~o:0 in
    check_f 1e-9 "signal lo" si'.Estimate.lo si.Estimate.lo;
    check_f 1e-9 "signal hi" si'.Estimate.hi si.Estimate.hi;
    let bi = Sym.border_interval man sets in
    let bi' = Estimate.border_based s ~o:0 in
    check_f 1e-9 "border lo" bi'.Estimate.lo bi.Estimate.lo;
    check_f 1e-9 "border hi" bi'.Estimate.hi bi.Estimate.hi
  done

let test_sym_large_n () =
  (* 30 inputs: far beyond the dense path.  A sparse cube function. *)
  let n = 30 in
  let man = Bdd.make_man ~nvars:n in
  let cube s = Twolevel.Cube.of_string s in
  let on =
    Twolevel.Cover.make ~n
      [ cube ("11" ^ String.make (n - 2) '-') ]
  in
  let dc =
    Twolevel.Cover.make ~n
      [ cube ("00" ^ String.make (n - 2) '-') ]
  in
  let sets = Sym.of_covers man ~on ~dc in
  check "valid partition" true (Sym.validate man sets = None);
  let st = Sym.stats man sets in
  check_f 1e-9 "f1 quarter" 0.25 st.Sym.f1;
  check_f 1e-9 "fdc quarter" 0.25 st.Sym.fdc;
  check_f 1e-9 "f0 half" 0.5 st.Sym.f0;
  (* on-set borders: the 11 quadrant touches 01 and 10 on two inputs:
     2 * 2^(n-2) ordered pairs *)
  check_f 1e-3 "b1" (2.0 *. (2.0 ** float_of_int (n - 2))) st.Sym.b1;
  let iv = Sym.border_interval man sets in
  check "interval ordered" true (iv.Estimate.lo <= iv.Estimate.hi)

let test_sym_overlap_detected () =
  let man = Bdd.make_man ~nvars:3 in
  let x = Bdd.var man 0 in
  let sets = { Sym.on = x; off = x; dc = Bdd.bnot man x } in
  check "overlap flagged" true (Sym.validate man sets <> None)

let sym_cases =
  [
    Alcotest.test_case "symbolic stats match dense" `Quick
      test_sym_matches_dense;
    Alcotest.test_case "symbolic estimates at n=30" `Quick test_sym_large_n;
    Alcotest.test_case "symbolic validate detects overlap" `Quick
      test_sym_overlap_detected;
  ]

let suite = (fst suite, snd suite @ sym_cases)

(* Multi-bit error model. *)

let test_kbit_matches_single () =
  let s = small_spec () in
  let impl = Bv.of_list 4 [ 0; 2; 3 ] in
  check_f 1e-9 "k=1 equals of_table" (ER.of_table s ~o:0 ~impl)
    (ER.of_table_kbit s ~o:0 ~impl ~k:1)

let test_kbit_parity_always_one () =
  (* Parity propagates every odd-weight error. *)
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
  let impl = Bv.create 16 in
  for m = 0 to 15 do
    if Bitvec.Minterm.popcount m mod 2 = 1 then begin
      Spec.set s ~o:0 ~m Spec.On;
      Bv.set impl m
    end
  done;
  check_f 1e-9 "k=1 all propagate" 1.0 (ER.of_table_kbit s ~o:0 ~impl ~k:1);
  check_f 1e-9 "k=3 all propagate" 1.0 (ER.of_table_kbit s ~o:0 ~impl ~k:3);
  (* even-weight errors are all masked by parity *)
  check_f 1e-9 "k=2 none propagate" 0.0 (ER.of_table_kbit s ~o:0 ~impl ~k:2)

let test_kbit_validation () =
  let s = small_spec () in
  let impl = Bv.create 4 in
  Alcotest.check_raises "k=0" (Invalid_argument "Error_rate.of_table_kbit: bad k")
    (fun () -> ignore (ER.of_table_kbit s ~o:0 ~impl ~k:0));
  Alcotest.check_raises "k>n" (Invalid_argument "Error_rate.of_table_kbit: bad k")
    (fun () -> ignore (ER.of_table_kbit s ~o:0 ~impl ~k:3))

let kbit_cases =
  [
    Alcotest.test_case "kbit: k=1 equals single-bit" `Quick
      test_kbit_matches_single;
    Alcotest.test_case "kbit: parity extremes" `Quick
      test_kbit_parity_always_one;
    Alcotest.test_case "kbit: validation" `Quick test_kbit_validation;
  ]

let suite = (fst suite, snd suite @ kbit_cases)

(* Confidence-interval helpers backing the fault campaigns. *)

let test_normal_quantile () =
  check_f 1e-4 "median" 0.0 (Stats.normal_quantile 0.5);
  check_f 1e-3 "97.5%" 1.95996 (Stats.normal_quantile 0.975);
  check_f 1e-3 "2.5%" (-1.95996) (Stats.normal_quantile 0.025);
  check_f 1e-3 "99.5%" 2.57583 (Stats.normal_quantile 0.995);
  (* quantile inverts the cdf *)
  check_f 1e-4 "roundtrip" 0.8
    (Stats.normal_cdf ~mu:0.0 ~sigma:1.0 (Stats.normal_quantile 0.8))

let test_wilson_interval () =
  (* Textbook value: 5/10 at 95% is (0.2366, 0.7634). *)
  let lo, hi = Stats.wilson_interval ~confidence:0.95 ~trials:10 ~successes:5 in
  check_f 1e-3 "5/10 lo" 0.2366 lo;
  check_f 1e-3 "5/10 hi" 0.7634 hi;
  (* Behaves sensibly at the extremes: nonzero width, clamped. *)
  let lo, hi = Stats.wilson_interval ~confidence:0.95 ~trials:50 ~successes:0 in
  check_f 1e-9 "0/50 lo" 0.0 lo;
  check "0/50 hi positive" true (hi > 0.0 && hi < 0.1);
  let lo, hi =
    Stats.wilson_interval ~confidence:0.95 ~trials:50 ~successes:50
  in
  check_f 1e-9 "50/50 hi" 1.0 hi;
  check "50/50 lo below one" true (lo < 1.0 && lo > 0.9);
  (* Higher confidence widens the interval. *)
  let l95, h95 =
    Stats.wilson_interval ~confidence:0.95 ~trials:100 ~successes:20
  in
  let l99, h99 =
    Stats.wilson_interval ~confidence:0.99 ~trials:100 ~successes:20
  in
  check "99% wider" true (l99 < l95 && h99 > h95)

let test_wilson_validation () =
  let expect label f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect "trials = 0" (fun () ->
      Stats.wilson_interval ~confidence:0.95 ~trials:0 ~successes:0);
  expect "successes > trials" (fun () ->
      Stats.wilson_interval ~confidence:0.95 ~trials:5 ~successes:6);
  expect "negative successes" (fun () ->
      Stats.wilson_interval ~confidence:0.95 ~trials:5 ~successes:(-1));
  expect "confidence = 1" (fun () ->
      Stats.wilson_interval ~confidence:1.0 ~trials:5 ~successes:2)

(* Fault_sim convergence on real synthesized benchmarks: for a mapped
   netlist of a fully specified implementation, the Monte-Carlo
   input-error rate must converge to the analytic
   {!Error_rate.of_netlist} for a fixed seed. *)

module Flow = Rdca_flow.Flow

let test_fault_sim_suite_benchmarks () =
  List.iter
    (fun name ->
      let spec =
        match Flow.load_spec name with
        | Ok s -> s
        | Error e -> Alcotest.failf "load %s: %s" name (Flow.error_to_string e)
      in
      let r =
        Flow.synthesize ~mode:Techmap.Mapper.Area ~strategy:Flow.Conventional
          spec
      in
      let exact = ER.of_netlist spec r.Flow.netlist in
      let rng = Random.State.make [| 2026 |] in
      let mc =
        Reliability.Fault_sim.run ~rng ~trials:20000 spec r.Flow.netlist
      in
      check
        (Printf.sprintf "%s: mc %.4f ~ exact %.4f" name
           mc.Reliability.Fault_sim.rate exact)
        true
        (abs_float (mc.Reliability.Fault_sim.rate -. exact) < 0.02))
    [ "bench"; "fout" ]

let test_fault_sim_validation () =
  let nl = Netlist.create ~ni:4 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  Netlist.set_outputs nl [| a |];
  let s = Spec.create ~ni:4 ~no:1 ~default:Spec.On in
  let expect label f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect "trials = 0" (fun () ->
      Reliability.Fault_sim.run ~rng:(Random.State.make [| 1 |]) ~trials:0 s nl);
  expect "trials < 0" (fun () ->
      Reliability.Fault_sim.run
        ~rng:(Random.State.make [| 1 |])
        ~trials:(-3) s nl);
  let wide = Spec.create ~ni:5 ~no:1 ~default:Spec.On in
  expect "arity mismatch" (fun () ->
      Reliability.Fault_sim.run
        ~rng:(Random.State.make [| 1 |])
        ~trials:10 wide nl)

let campaign_support_cases =
  [
    Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
    Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
    Alcotest.test_case "wilson validation" `Quick test_wilson_validation;
    Alcotest.test_case "fault sim converges on suite benchmarks" `Quick
      test_fault_sim_suite_benchmarks;
    Alcotest.test_case "fault sim validation" `Quick test_fault_sim_validation;
  ]

let suite = (fst suite, snd suite @ campaign_support_cases)

(* Aggregate (multi-output) bounds: the mean of any full DC assignment
   must land inside the mean exact bounds, and those bounds must be
   ordered — the invariants the parallelised [of_tables] and
   [mean_bounds] aggregations rely on. *)

let spec2_of_phases p0 p1 =
  let s = Spec.create ~ni:4 ~no:2 ~default:Spec.Off in
  let fill o phases =
    List.iteri
      (fun m p ->
        Spec.set s ~o ~m
          (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
      phases
  in
  fill 0 p0;
  fill 1 p1;
  s

let prop_mean_min_le_max =
  QCheck.Test.make ~name:"mean bounds: min_rate <= max_rate" ~count:200
    QCheck.(pair (arb_phases 4) (arb_phases 4))
    (fun (p0, p1) ->
      let s = spec2_of_phases p0 p1 in
      let b = ER.mean_bounds s in
      ER.min_rate b <= ER.max_rate b +. 1e-12)

let prop_mean_bounds_contain_of_tables =
  QCheck.Test.make
    ~name:"any multi-output assignment lands within mean bounds" ~count:200
    QCheck.(pair (pair (arb_phases 4) (arb_phases 4)) (pair (int_bound 0xffff) (int_bound 0xffff)))
    (fun ((p0, p1), (mask0, mask1)) ->
      let s = spec2_of_phases p0 p1 in
      let impl_of o mask =
        let impl = Bv.create 16 in
        for m = 0 to 15 do
          match Spec.get s ~o ~m with
          | Spec.On -> Bv.set impl m
          | Spec.Off -> ()
          | Spec.Dc -> if mask land (1 lsl m) <> 0 then Bv.set impl m
        done;
        impl
      in
      let tables = [| impl_of 0 mask0; impl_of 1 mask1 |] in
      let r = ER.of_tables s tables in
      let b = ER.mean_bounds s in
      r >= ER.min_rate b -. 1e-12 && r <= ER.max_rate b +. 1e-12)

let aggregate_bound_cases =
  [
    QCheck_alcotest.to_alcotest prop_mean_min_le_max;
    QCheck_alcotest.to_alcotest prop_mean_bounds_contain_of_tables;
  ]

let suite = (fst suite, snd suite @ aggregate_bound_cases)
