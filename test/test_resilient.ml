(* Supervised multi-process execution: frame codec, checkpoint
   round-trips, the supervisor's happy/chaos/degraded paths, the
   shard-partition merge property behind campaign distribution, and
   the Distrib end-to-end guarantees (chaos run and checkpoint resume
   both bit-identical to the sequential campaign). *)

module J = Rdca_json.Jsonout
module Jin = Rdca_json.Jsonin
module Frame = Resilient.Frame
module Event = Resilient.Event
module Checkpoint = Resilient.Checkpoint
module Interrupt = Resilient.Interrupt
module Sup = Resilient.Supervisor
module Spec = Pla.Spec
module Campaign = Reliability.Campaign
module Flow = Rdca_flow.Flow
module Distrib = Rdca_flow.Distrib

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Frame codec *)

let sample_value =
  J.Obj
    [
      ("type", J.String "result");
      ("id", J.Int 3);
      ("value", J.List [ J.Float 0.125; J.Float 1e-17; J.Bool true; J.Null ]);
      ("nested", J.Obj [ ("s", J.String "a\"b\\c\nd") ]);
    ]

let test_frame_roundtrip_bytewise () =
  (* Two frames, delivered one byte at a time: the decoder must yield
     both values exactly, whatever the chunking. *)
  let wire = Frame.encode sample_value ^ Frame.encode (J.Int 42) in
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      let b = Bytes.make 1 c in
      List.iter (fun v -> got := v :: !got) (Frame.feed dec b 1))
    wire;
  match List.rev !got with
  | [ a; b ] ->
      check "first frame" true (a = sample_value);
      check "second frame" true (b = J.Int 42)
  | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l)

let test_frame_protocol_error () =
  let dec = Frame.decoder () in
  let bad = Bytes.of_string "zzzzzzzz\n" in
  match Frame.feed dec bad (Bytes.length bad) with
  | _ -> Alcotest.fail "malformed header must raise"
  | exception Frame.Protocol_error _ -> ()

let test_frame_leading_noise () =
  (* A tolerant decoder skips start-up junk on the worker's stdout
     (e.g. a library printing a diagnostic line at module init), then
     turns strict once the first real frame lands. *)
  let wire =
    "qcheck random seed: 873022513\nmore junk\n"
    ^ Frame.encode sample_value ^ Frame.encode (J.Int 42)
  in
  let dec = Frame.decoder ~tolerate_noise:true () in
  let got = Frame.feed dec (Bytes.of_string wire) (String.length wire) in
  check "noise skipped, both frames decoded" true
    (got = [ sample_value; J.Int 42 ]);
  let bad = Bytes.of_string "zzzzzzzz\n" in
  (match Frame.feed dec bad (Bytes.length bad) with
  | _ -> Alcotest.fail "tolerant decoder must turn strict after sync"
  | exception Frame.Protocol_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Checkpoints *)

let ckpt_fixture =
  {
    Checkpoint.kind = "campaign";
    key = J.Obj [ ("input", J.String "bench"); ("seed", J.Int 1) ];
    total = 3;
    interrupted = true;
    shards = [ (0, J.List [ J.Float 0.5 ]); (2, J.String "x") ];
  }

let with_temp_checkpoint f =
  let path = Filename.temp_file "rdca-test-ckpt" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp_checkpoint (fun path ->
      Checkpoint.save path ckpt_fixture;
      (match Checkpoint.load path with
      | Ok c -> check "load = save" true (c = ckpt_fixture)
      | Error e -> Alcotest.fail e);
      let shards, rejected =
        Checkpoint.resume ~path ~kind:"campaign" ~key:ckpt_fixture.Checkpoint.key
          ~total:3
      in
      check "no rejection" true (rejected = None);
      check "shards restored" true (shards = ckpt_fixture.Checkpoint.shards))

let test_checkpoint_fingerprint_mismatch () =
  with_temp_checkpoint (fun path ->
      Checkpoint.save path ckpt_fixture;
      let shards, rejected =
        Checkpoint.resume ~path ~kind:"campaign"
          ~key:(J.Obj [ ("input", J.String "other"); ("seed", J.Int 1) ])
          ~total:3
      in
      check "mismatch rejected" true (rejected <> None);
      check "no shards on mismatch" true (shards = []);
      let shards2, rejected2 =
        Checkpoint.resume ~path ~kind:"sweep" ~key:ckpt_fixture.Checkpoint.key
          ~total:3
      in
      check "kind mismatch rejected" true (rejected2 <> None && shards2 = []))

let test_checkpoint_missing_file () =
  let shards, rejected =
    Checkpoint.resume ~path:"/nonexistent/rdca-ckpt.json" ~kind:"campaign"
      ~key:J.Null ~total:1
  in
  check "missing file is a silent fresh start" true
    (shards = [] && rejected = None)

(* ------------------------------------------------------------------ *)
(* Supervisor *)

let tasks n = Array.init n (fun i -> J.Obj [ ("x", J.Int i) ])

let square v =
  match Option.bind (Jin.member "x" v) Jin.to_int with
  | Some x -> J.Obj [ ("y", J.Int (x * x)) ]
  | None -> failwith "bad payload"

(* The handler served by the test binary's hidden worker mode (see
   test/main.ml): square, except payloads marked "boom" raise. *)
let worker_handler v =
  match Option.bind (Jin.member "boom" v) Jin.to_bool with
  | Some true -> failwith "boom"
  | _ -> square v

(* OCaml 5 forbids Unix.fork once any worker domain has ever been
   spawned — and earlier suites (or this one's campaign runs, on
   multicore machines) do exactly that.  Exec-spawning the test binary
   back into its worker mode exercises real worker processes
   regardless, which is also how the rdca CLI spawns by default. *)
let exec_spawn = Sup.Exec [| Sys.executable_name; "--resilient-worker" |]

let expected n = List.init n (fun i -> (i, J.Obj [ ("y", J.Int (i * i)) ]))

let test_sup_in_process () =
  let out = Sup.run { Sup.default with Sup.workers = 0 } ~handler:square
      ~tasks:(tasks 5) in
  check "results" true (out.Sup.results = expected 5);
  check "no failures" true (out.Sup.failures = []);
  check_int "one dispatch per task" 5 out.Sup.dispatches;
  check "in-process mode" true
    (match out.Sup.mode with Sup.Processes _ -> false | _ -> true)

let test_sup_empty_and_skip () =
  let out = Sup.run Sup.default ~handler:square ~tasks:[||] in
  check "empty run" true (out.Sup.results = [] && out.Sup.dispatches = 0);
  let out =
    Sup.run ~skip:[ 0; 2; 99 ] { Sup.default with Sup.workers = 0 }
      ~handler:square ~tasks:(tasks 4)
  in
  check "skipped ids omitted" true
    (List.map fst out.Sup.results = [ 1; 3 ])

let test_sup_processes () =
  let seen = ref [] in
  let out =
    Sup.run
      ~on_result:(fun id _ -> seen := id :: !seen)
      {
        Sup.default with
        Sup.workers = 2;
        Sup.spawn = exec_spawn;
        Sup.deadline = 30.0;
      }
      ~handler:worker_handler ~tasks:(tasks 6)
  in
  check "worker results match in-process" true (out.Sup.results = expected 6);
  check "process mode" true (out.Sup.mode = Sup.Processes 2);
  check "on_result fired once per task" true
    (List.sort compare !seen = [ 0; 1; 2; 3; 4; 5 ]);
  check "spawn events logged" true
    (List.exists (fun e -> e.Event.code = "worker-spawned") out.Sup.events)

let test_sup_fork_or_degrade () =
  (* Fork works only in a process that never spawned a domain; when it
     cannot (multicore runs, or after other suites' parallel regions)
     the run must degrade up front — with identical results either
     way. *)
  let fork_was_safe = Parallel.Pool.fork_safe () in
  let out =
    Sup.run { Sup.default with Sup.workers = 2 } ~handler:square
      ~tasks:(tasks 4)
  in
  check "results identical whichever rung ran" true
    (out.Sup.results = expected 4 && out.Sup.failures = []);
  if fork_was_safe then
    check "forked process mode" true (out.Sup.mode = Sup.Processes 2)
  else begin
    check "degraded off the process rung" true
      (match out.Sup.mode with Sup.Processes _ -> false | _ -> true);
    check "fork-unavailable event logged" true
      (List.exists (fun e -> e.Event.code = "fork-unavailable") out.Sup.events)
  end

let test_sup_handler_failure () =
  let tasks =
    Array.init 4 (fun i ->
        let boom = if i = 2 then [ ("boom", J.Bool true) ] else [] in
        J.Obj (("x", J.Int i) :: boom))
  in
  let out =
    Sup.run
      {
        Sup.default with
        Sup.workers = 2;
        Sup.spawn = exec_spawn;
        Sup.retries = 1;
        Sup.backoff = 0.01;
      }
      ~handler:worker_handler ~tasks
  in
  check "other tasks still complete" true
    (List.map fst out.Sup.results = [ 0; 1; 3 ]);
  check "failing task recorded" true (List.map fst out.Sup.failures = [ 2 ]);
  check "retry happened before giving up" true (out.Sup.dispatches > 4);
  check "failure event logged" true
    (List.exists (fun e -> e.Event.code = "task-failed") out.Sup.events)

let test_sup_chaos_kill () =
  let cfg =
    {
      Sup.default with
      Sup.workers = 2;
      Sup.spawn = exec_spawn;
      Sup.retries = 2;
      Sup.backoff = 0.05;
      Sup.deadline = 10.0;
      Sup.chaos =
        Some
          { Sup.kill_fraction = 1.0; Sup.stall_fraction = 0.0; Sup.chaos_seed = 5 };
    }
  in
  let out = Sup.run cfg ~handler:worker_handler ~tasks:(tasks 4) in
  check "all tasks survive a 100% first-attempt kill rate" true
    (out.Sup.results = expected 4 && out.Sup.failures = []);
  check "kills were actually injected" true
    (List.exists (fun e -> e.Event.code = "chaos") out.Sup.events);
  check "worker deaths observed" true
    (List.exists (fun e -> e.Event.code = "worker-died") out.Sup.events)

let test_sup_chaos_stall () =
  let cfg =
    {
      Sup.default with
      Sup.workers = 2;
      Sup.spawn = exec_spawn;
      Sup.retries = 2;
      Sup.backoff = 0.05;
      Sup.deadline = 0.6;
      Sup.chaos =
        Some
          { Sup.kill_fraction = 0.0; Sup.stall_fraction = 1.0; Sup.chaos_seed = 5 };
    }
  in
  let out = Sup.run cfg ~handler:worker_handler ~tasks:(tasks 4) in
  check "all tasks survive a 100% first-attempt stall rate" true
    (out.Sup.results = expected 4 && out.Sup.failures = []);
  check "deadline kills recovered the stalls" true
    (List.exists (fun e -> e.Event.code = "task-deadline") out.Sup.events)

let test_sup_degrades_without_workers () =
  let cfg =
    {
      Sup.default with
      Sup.workers = 2;
      Sup.spawn = Sup.Exec [| "/nonexistent/rdca-worker-binary" |];
    }
  in
  let out = Sup.run cfg ~handler:square ~tasks:(tasks 4) in
  check "degraded run still completes everything" true
    (out.Sup.results = expected 4 && out.Sup.failures = []);
  check "fell off the process rung" true
    (match out.Sup.mode with Sup.Processes _ -> false | _ -> true);
  check "degradation event logged" true
    (List.exists (fun e -> e.Event.code = "degraded") out.Sup.events)

(* ------------------------------------------------------------------ *)
(* Campaign sharding: any partition of the site list, evaluated
   independently and concatenated, equals the monolithic run — the
   invariant every worker schedule relies on. *)

let campaign_fixture () =
  let nl = Netlist.create ~ni:3 in
  let a = Netlist.add nl Netlist.Gate.And [| 0; 1 |] in
  let x = Netlist.add nl Netlist.Gate.Xor [| a; 2 |] in
  let n = Netlist.add nl Netlist.Gate.Nor [| a; 2 |] in
  Netlist.set_outputs nl [| x; n |];
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  for m = 0 to 7 do
    let outs = Netlist.eval_minterm nl m in
    for o = 0 to 1 do
      Spec.set s ~o ~m (if outs.(o) then Spec.On else Spec.Off)
    done
  done;
  Spec.set s ~o:0 ~m:5 Spec.Dc;
  Spec.set s ~o:1 ~m:2 Spec.Dc;
  (s, nl)

let rec chunk k = function
  | [] -> []
  | l ->
      let n = min k (List.length l) in
      List.filteri (fun i _ -> i < n) l
      :: chunk k (List.filteri (fun i _ -> i >= n) l)

let prop_shard_partition =
  QCheck.Test.make ~name:"sharded campaign merges like the monolithic run"
    ~count:8
    QCheck.(int_range 1 8)
    (fun shard_size ->
      let s, nl = campaign_fixture () in
      let config =
        { Campaign.default_config with Campaign.trials_per_site = 60 }
      in
      let full = Campaign.run config s nl in
      let sites = Campaign.selected_sites config nl in
      let merged =
        List.concat_map
          (fun c -> Campaign.run_sites config s nl c)
          (chunk shard_size sites)
      in
      merged = full.Campaign.results)

(* ------------------------------------------------------------------ *)
(* Distrib end-to-end *)

let strip (r : Campaign.report) =
  ( r.Campaign.results,
    r.Campaign.sites_total,
    r.Campaign.sites_done,
    r.Campaign.complete )

let distrib_fixture () =
  let spec = Synthetic.Suite.load_by_name "bench" in
  let r =
    Flow.synthesize ~mode:Techmap.Mapper.Area ~strategy:Flow.Conventional spec
  in
  let config =
    {
      Campaign.default_config with
      Campaign.trials_per_site = 50;
      max_sites = Some 6;
    }
  in
  (spec, r.Flow.netlist, config)

let run_distrib opts (spec, nl, config) =
  Distrib.campaign_run opts ~input:"bench" ~strategy:Flow.Conventional
    ~mode:Techmap.Mapper.Area config spec nl

let test_distrib_chaos_identical () =
  let spec, nl, config = distrib_fixture () in
  let seq = Campaign.run config spec nl in
  let sup =
    {
      Sup.default with
      Sup.workers = 2;
      Sup.deadline = 2.0;
      Sup.backoff = 0.05;
      Sup.chaos =
        Some
          {
            Sup.kill_fraction = 0.4;
            Sup.stall_fraction = 0.2;
            Sup.chaos_seed = 7;
          };
    }
  in
  let opts = { Distrib.default_campaign_opts with Distrib.sup; shard_size = 2 } in
  match run_distrib opts (spec, nl, config) with
  | Error e -> Alcotest.fail e
  | Ok d ->
      check "chaotic run completes" false d.Distrib.interrupted;
      check "chaotic run is bit-identical to the sequential campaign" true
        (strip d.Distrib.value = strip seq)

let test_distrib_resume () =
  let spec, nl, config = distrib_fixture () in
  let seq = Campaign.run config spec nl in
  with_temp_checkpoint (fun ckpt ->
      let opts =
        {
          Distrib.sup = { Sup.default with Sup.workers = 2 };
          shard_size = 2;
          checkpoint = Some ckpt;
          resume = false;
          stop_after = Some 1;
        }
      in
      (match run_distrib opts (spec, nl, config) with
      | Error e -> Alcotest.fail e
      | Ok d ->
          check "stopped run is interrupted" true d.Distrib.interrupted;
          check "partial report marked incomplete" false
            d.Distrib.value.Campaign.complete);
      (match Checkpoint.load ckpt with
      | Ok c ->
          check "checkpoint holds the finished shard" true
            (c.Checkpoint.interrupted && List.length c.Checkpoint.shards = 1)
      | Error e -> Alcotest.fail e);
      match
        run_distrib
          { opts with Distrib.resume = true; stop_after = None }
          (spec, nl, config)
      with
      | Error e -> Alcotest.fail e
      | Ok d ->
          check "resumed run completes" false d.Distrib.interrupted;
          check "resume was taken from the checkpoint" true
            (List.exists
               (fun e -> e.Event.code = "checkpoint-resumed")
               d.Distrib.events);
          check "resumed report is bit-identical to the sequential campaign"
            true
            (strip d.Distrib.value = strip seq))

(* ------------------------------------------------------------------ *)
(* Interrupt hooks *)

let test_interrupt_hooks () =
  let hits = ref 0 in
  let unhook = Interrupt.on_interrupt (fun () -> incr hits) in
  Interrupt.simulate ();
  check_int "hook ran" 1 !hits;
  check "triggered resets after simulate" false (Interrupt.triggered ());
  unhook ();
  Interrupt.simulate ();
  check_int "deregistered hook does not run again" 1 !hits

let suite =
  ( "resilient",
    [
      Alcotest.test_case "frame: bytewise round-trip" `Quick
        test_frame_roundtrip_bytewise;
      Alcotest.test_case "frame: leading noise tolerated" `Quick
        test_frame_leading_noise;
      Alcotest.test_case "frame: protocol error" `Quick
        test_frame_protocol_error;
      Alcotest.test_case "checkpoint: round-trip" `Quick
        test_checkpoint_roundtrip;
      Alcotest.test_case "checkpoint: fingerprint mismatch" `Quick
        test_checkpoint_fingerprint_mismatch;
      Alcotest.test_case "checkpoint: missing file" `Quick
        test_checkpoint_missing_file;
      Alcotest.test_case "supervisor: in-process" `Quick test_sup_in_process;
      Alcotest.test_case "supervisor: empty and skip" `Quick
        test_sup_empty_and_skip;
      Alcotest.test_case "supervisor: exec'd worker processes" `Quick
        test_sup_processes;
      Alcotest.test_case "supervisor: fork or up-front degrade" `Quick
        test_sup_fork_or_degrade;
      Alcotest.test_case "supervisor: permanent handler failure" `Quick
        test_sup_handler_failure;
      Alcotest.test_case "supervisor: chaos kills" `Quick test_sup_chaos_kill;
      Alcotest.test_case "supervisor: chaos stalls" `Quick
        test_sup_chaos_stall;
      Alcotest.test_case "supervisor: degradation ladder" `Quick
        test_sup_degrades_without_workers;
      QCheck_alcotest.to_alcotest prop_shard_partition;
      Alcotest.test_case "distrib: chaos run bit-identical" `Quick
        test_distrib_chaos_identical;
      Alcotest.test_case "distrib: checkpoint resume" `Quick
        test_distrib_resume;
      Alcotest.test_case "interrupt: hooks" `Quick test_interrupt_hooks;
    ] )
