(* Tests for the CDCL SAT core and the Tseitin circuit encoding:
   hand-built instances, pigeonhole unsatisfiability, incremental
   assumptions, and a QCheck differential of random 3-CNF against
   brute-force enumeration. *)

module Solver = Sat.Solver
module Cnf = Sat.Cnf
module Gate = Netlist.Gate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let is_sat r = r = Solver.Sat

let test_trivial () =
  let s = Solver.create () in
  check "empty db is sat" true (is_sat (Solver.solve s));
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  check "unit sat" true (is_sat (Solver.solve s));
  check "model" true (Solver.value s v);
  Solver.add_clause s [ Solver.neg v ];
  check "contradictory units" false (is_sat (Solver.solve s))

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  check "empty clause" false (is_sat (Solver.solve s))

let test_tautology_dropped () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v; Solver.neg v ];
  check "tautology kept sat" true (is_sat (Solver.solve s))

let test_simple_implications () =
  (* (a -> b), (b -> c), a  forces c. *)
  let s = Solver.create () in
  let a = Solver.new_var s
  and b = Solver.new_var s
  and c = Solver.new_var s in
  Solver.add_clause s [ Solver.neg a; Solver.pos b ];
  Solver.add_clause s [ Solver.neg b; Solver.pos c ];
  Solver.add_clause s [ Solver.pos a ];
  check "chain sat" true (is_sat (Solver.solve s));
  check "a" true (Solver.value s a);
  check "b" true (Solver.value s b);
  check "c" true (Solver.value s c);
  check "unsat under !c" false
    (is_sat (Solver.solve ~assumptions:[ Solver.neg c ] s));
  check "still sat after" true (is_sat (Solver.solve s))

(* Pigeonhole PHP(n+1, n): n+1 pigeons in n holes, classically hard
   for resolution at scale; tiny instances exercise conflict analysis
   and backjumping thoroughly. *)
let php holes =
  let s = Solver.create () in
  let pigeons = holes + 1 in
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> 0)) in
  for p = 0 to pigeons - 1 do
    for h = 0 to holes - 1 do
      v.(p).(h) <- Solver.new_var s
    done
  done;
  for p = 0 to pigeons - 1 do
    Solver.add_clause s
      (List.init holes (fun h -> Solver.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for q = p + 1 to pigeons - 1 do
        Solver.add_clause s [ Solver.neg v.(p).(h); Solver.neg v.(q).(h) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  for holes = 2 to 5 do
    check
      (Printf.sprintf "php %d" holes)
      false
      (is_sat (Solver.solve (php holes)))
  done;
  let s = php 4 in
  check "php 4 unsat" false (is_sat (Solver.solve s));
  check "stats counted" true (Solver.conflicts s > 0);
  check "decisions counted" true (Solver.decisions s > 0);
  check "propagations counted" true (Solver.propagations s > 0)

let test_assumption_sweep () =
  (* xor chain x0 ^ x1 ^ x2 = 1 encoded as CNF; sweep all assumption
     triples and compare with arithmetic. *)
  let s = Solver.create () in
  let x = Array.init 3 (fun _ -> Solver.new_var s) in
  let b = Cnf.create s in
  let y = Cnf.xor_ b (Cnf.xor_ b (Solver.pos x.(0)) (Solver.pos x.(1)))
      (Solver.pos x.(2)) in
  Solver.add_clause s [ y ];
  for m = 0 to 7 do
    let assumptions =
      List.init 3 (fun i ->
          if m land (1 lsl i) <> 0 then Solver.pos x.(i) else Solver.neg x.(i))
    in
    let parity = (m land 1) lxor ((m lsr 1) land 1) lxor ((m lsr 2) land 1) in
    check
      (Printf.sprintf "xor sweep m=%d" m)
      (parity = 1)
      (is_sat (Solver.solve ~assumptions s))
  done

let test_lit_packing () =
  check_int "pos" 14 (Solver.pos 7);
  check_int "neg" 15 (Solver.neg 7);
  check_int "lnot pos" (Solver.neg 7) (Solver.lnot (Solver.pos 7));
  check_int "var_of" 7 (Solver.var_of (Solver.neg 7));
  check "is_neg" true (Solver.is_neg (Solver.neg 7));
  check "is_pos" false (Solver.is_neg (Solver.pos 7))

(* Encode every gate kind over fresh inputs and sweep all input
   combinations via assumptions, comparing against Gate.eval. *)
let test_gate_encoding () =
  let cell =
    Gate.Cell
      {
        cell_name = "maj3";
        tt = Logic.Truth.of_fun 3 (fun m ->
            let b i = (m lsr i) land 1 in
            b 0 + b 1 + b 2 >= 2);
        arity = 3;
        area = 1.0;
        delay = 1.0;
        input_cap = 1.0;
      }
  in
  let cases =
    [
      (Gate.Buf, 1); (Gate.Not, 1); (Gate.And, 3); (Gate.Or, 3);
      (Gate.Nand, 2); (Gate.Nor, 2); (Gate.Xor, 3); (Gate.Xnor, 2);
      (Gate.Const true, 0); (Gate.Const false, 0); (cell, 3);
    ]
  in
  List.iter
    (fun (g, n) ->
      let s = Solver.create () in
      let b = Cnf.create s in
      let vars = Array.init n (fun _ -> Solver.new_var s) in
      let y = Cnf.gate b g (Array.map Solver.pos vars) in
      for m = 0 to (1 lsl n) - 1 do
        let inputs = Array.init n (fun i -> m land (1 lsl i) <> 0) in
        let expect = Gate.eval g inputs in
        let assumptions =
          List.init n (fun i ->
              if inputs.(i) then Solver.pos vars.(i) else Solver.neg vars.(i))
        in
        check
          (Printf.sprintf "%s m=%d out" (Gate.name g) m)
          expect
          (is_sat (Solver.solve ~assumptions:(y :: assumptions) s));
        check
          (Printf.sprintf "%s m=%d !out" (Gate.name g) m)
          (not expect)
          (is_sat
             (Solver.solve ~assumptions:(Solver.lnot y :: assumptions) s))
      done)
    cases

let test_gate_arity_checks () =
  let s = Solver.create () in
  let b = Cnf.create s in
  let l = Cnf.fresh b in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "input rejected" true
    (raises (fun () -> Cnf.gate b (Gate.Input 0) [||]));
  check "variadic needs 2" true
    (raises (fun () -> Cnf.gate b Gate.And [| l |]));
  check "not arity" true
    (raises (fun () -> Cnf.gate b Gate.Not [| l; l |]))

(* Brute-force CNF evaluation for the differential property. *)
let brute_force nvars clauses =
  let sat_under m =
    List.for_all
      (fun cl ->
        List.exists
          (fun l ->
            let v = Solver.var_of l in
            let bit = m land (1 lsl v) <> 0 in
            if Solver.is_neg l then not bit else bit)
          cl)
      clauses
  in
  let rec scan m = m < 1 lsl nvars && (sat_under m || scan (m + 1)) in
  scan 0

let random_cnf_arb =
  let gen st =
    let nvars = 1 + QCheck.Gen.int_bound 7 st in
    let nclauses = QCheck.Gen.int_bound 30 st in
    let clause _ =
      let len = 1 + QCheck.Gen.int_bound 2 st in
      List.init len (fun _ ->
          let v = QCheck.Gen.int_bound (nvars - 1) st in
          if QCheck.Gen.bool st then Solver.pos v else Solver.neg v)
    in
    (nvars, List.init nclauses clause)
  in
  QCheck.make gen ~print:(fun (n, cls) ->
      Printf.sprintf "nvars=%d clauses=[%s]" n
        (String.concat "; "
           (List.map
              (fun cl ->
                String.concat ","
                  (List.map
                     (fun l ->
                       Printf.sprintf "%s%d"
                         (if Solver.is_neg l then "-" else "")
                         (Solver.var_of l))
                     cl))
              cls)))

let prop_random_cnf =
  QCheck.Test.make ~name:"solver agrees with enumeration on random 3-CNF"
    ~count:300 random_cnf_arb (fun (nvars, clauses) ->
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      is_sat (Solver.solve s) = brute_force nvars clauses)

let prop_model_satisfies =
  QCheck.Test.make ~name:"reported models satisfy every clause" ~count:300
    random_cnf_arb (fun (nvars, clauses) ->
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Unsat -> true
      | Solver.Sat ->
          List.for_all
            (fun cl ->
              List.exists
                (fun l ->
                  let v = Solver.value s (Solver.var_of l) in
                  if Solver.is_neg l then not v else v)
                cl)
            clauses)

(* Search statistics: the per-solver accessors move monotonically and
   the always-on Prof counters pick up every solve's deltas. *)
let test_search_counters () =
  let before =
    List.map Prof.value
      [
        Prof.counter "sat.conflicts";
        Prof.counter "sat.decisions";
        Prof.counter "sat.propagations";
        Prof.counter "sat.restarts";
      ]
  in
  let s = Solver.create () in
  let v = Array.init 8 (fun _ -> Solver.new_var s) in
  (* small pigeonhole-ish UNSAT core: forces real search *)
  for i = 0 to 6 do
    Solver.add_clause s [ Solver.pos v.(i); Solver.pos v.(i + 1) ];
    Solver.add_clause s [ Solver.neg v.(i); Solver.neg v.(i + 1) ]
  done;
  Solver.add_clause s [ Solver.pos v.(0); Solver.pos v.(7) ];
  ignore (Solver.solve s);
  check "conflicts >= 0" true (Solver.conflicts s >= 0);
  check "decisions >= 0" true (Solver.decisions s >= 0);
  check "propagations > 0" true (Solver.propagations s > 0);
  check "restarts >= 0" true (Solver.restarts s >= 0);
  let after =
    List.map Prof.value
      [
        Prof.counter "sat.conflicts";
        Prof.counter "sat.decisions";
        Prof.counter "sat.propagations";
        Prof.counter "sat.restarts";
      ]
  in
  check "prof counters monotone" true (List.for_all2 ( <= ) before after);
  check "prof saw the propagations" true
    (List.nth after 2 >= List.nth before 2 + Solver.propagations s)

let suite =
  ( "sat",
    [
      Alcotest.test_case "trivial" `Quick test_trivial;
      Alcotest.test_case "empty clause" `Quick test_empty_clause;
      Alcotest.test_case "tautology" `Quick test_tautology_dropped;
      Alcotest.test_case "implication chain" `Quick test_simple_implications;
      Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
      Alcotest.test_case "assumption sweep" `Quick test_assumption_sweep;
      Alcotest.test_case "literal packing" `Quick test_lit_packing;
      Alcotest.test_case "gate encoding" `Quick test_gate_encoding;
      Alcotest.test_case "gate arity checks" `Quick test_gate_arity_checks;
      Alcotest.test_case "search counters" `Quick test_search_counters;
      QCheck_alcotest.to_alcotest prop_random_cnf;
      QCheck_alcotest.to_alcotest prop_model_satisfies;
    ] )
