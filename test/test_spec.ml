(* Tests for the incompletely specified function representation. *)

module Spec = Pla.Spec
module Cover = Twolevel.Cover
module Cube = Twolevel.Cube

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let phase = Alcotest.testable
    (fun ppf -> function
      | Spec.On -> Format.pp_print_string ppf "On"
      | Spec.Off -> Format.pp_print_string ppf "Off"
      | Spec.Dc -> Format.pp_print_string ppf "Dc")
    ( = )

let test_create_defaults () =
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Dc in
  check_int "ni" 3 (Spec.ni s);
  check_int "no" 2 (Spec.no s);
  check_int "size" 8 (Spec.size s);
  Alcotest.check phase "default" Spec.Dc (Spec.get s ~o:1 ~m:5);
  check_int "dc count" 8 (Spec.dc_count s ~o:0)

let test_set_get () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:2 Spec.On;
  Alcotest.check phase "set on" Spec.On (Spec.get s ~o:0 ~m:2);
  Alcotest.check phase "untouched" Spec.Off (Spec.get s ~o:0 ~m:1);
  check_int "on count" 1 (Spec.on_count s ~o:0);
  check_int "off count" 3 (Spec.off_count s ~o:0)

let test_assign_dc () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Dc in
  Spec.assign_dc s ~o:0 ~m:0 true;
  Spec.assign_dc s ~o:0 ~m:1 false;
  Alcotest.check phase "to on" Spec.On (Spec.get s ~o:0 ~m:0);
  Alcotest.check phase "to off" Spec.Off (Spec.get s ~o:0 ~m:1);
  Alcotest.check_raises "not dc"
    (Invalid_argument "Spec.assign_dc: minterm is not DC") (fun () ->
      Spec.assign_dc s ~o:0 ~m:0 false)

let test_copy_equal () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:3 Spec.On;
  let c = Spec.copy s in
  check "equal after copy" true (Spec.equal s c);
  Spec.set c ~o:0 ~m:4 Spec.Dc;
  check "independent" false (Spec.equal s c)

let test_signal_probs () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:0 Spec.On;
  Spec.set s ~o:0 ~m:1 Spec.Dc;
  let f1, f0, fdc = Spec.signal_probs s ~o:0 in
  Alcotest.(check (float 1e-9)) "f1" 0.25 f1;
  Alcotest.(check (float 1e-9)) "f0" 0.5 f0;
  Alcotest.(check (float 1e-9)) "fdc" 0.25 fdc

let test_dc_fraction () =
  let s = Spec.create ~ni:2 ~no:2 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:0 Spec.Dc;
  Spec.set s ~o:1 ~m:0 Spec.Dc;
  Spec.set s ~o:1 ~m:1 Spec.Dc;
  Alcotest.(check (float 1e-9)) "3 of 8" 0.375 (Spec.dc_fraction s)

let test_neighbour_counts () =
  (* 2-input function: m0=On, m1=Off, m2=Dc, m3=On.
     Neighbours of m0 (00): m1 (flip x0), m2 (flip x1). *)
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:0 Spec.On;
  Spec.set s ~o:0 ~m:2 Spec.Dc;
  Spec.set s ~o:0 ~m:3 Spec.On;
  let on, off, dc = Spec.neighbour_counts s ~o:0 ~m:0 in
  check_int "on nbrs of 0" 0 on;
  check_int "off nbrs of 0" 1 off;
  check_int "dc nbrs of 0" 1 dc;
  check_int "on nbrs of 2" 2 (Spec.on_neighbours s ~o:0 ~m:2);
  check_int "off nbrs of 1" 0 (Spec.off_neighbours s ~o:0 ~m:1);
  check_int "dc nbrs of 3" 1 (Spec.dc_neighbours s ~o:0 ~m:3)

let test_covers_roundtrip () =
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:1 Spec.On;
  Spec.set s ~o:0 ~m:2 Spec.Dc;
  Spec.set s ~o:1 ~m:7 Spec.On;
  let covers =
    List.init 2 (fun o -> (Spec.on_cover s ~o, Spec.dc_cover s ~o))
  in
  let s2 = Spec.of_covers ~ni:3 covers in
  check "roundtrip" true (Spec.equal s s2)

let test_of_covers_on_wins () =
  (* Overlapping on and dc covers: On wins. *)
  let on = Cover.make ~n:2 [ Cube.of_string "1-" ] in
  let dc = Cover.make ~n:2 [ Cube.of_string "11" ] in
  let s = Spec.of_covers ~ni:2 [ (on, dc) ] in
  Alcotest.check phase "overlap is On" Spec.On (Spec.get s ~o:0 ~m:3)

let test_iter_dc () =
  let s = Spec.create ~ni:3 ~no:1 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:2 Spec.Dc;
  Spec.set s ~o:0 ~m:5 Spec.Dc;
  let acc = ref [] in
  Spec.iter_dc s ~o:0 (fun m -> acc := m :: !acc);
  Alcotest.(check (list int)) "dc minterms" [ 2; 5 ] (List.rev !acc)

let test_bv_extraction () =
  let s = Spec.create ~ni:2 ~no:1 ~default:Spec.Dc in
  Spec.set s ~o:0 ~m:1 Spec.On;
  Spec.set s ~o:0 ~m:2 Spec.Off;
  Alcotest.(check (list int)) "on_bv" [ 1 ] (Bitvec.Bv.to_list (Spec.on_bv s ~o:0));
  Alcotest.(check (list int)) "off_bv" [ 2 ] (Bitvec.Bv.to_list (Spec.off_bv s ~o:0));
  Alcotest.(check (list int)) "dc_bv" [ 0; 3 ] (Bitvec.Bv.to_list (Spec.dc_bv s ~o:0))

let test_output_value () =
  let s = Spec.create ~ni:1 ~no:1 ~default:Spec.Dc in
  Spec.set s ~o:0 ~m:0 Spec.On;
  check "on is true" true (Spec.output_value s ~o:0 ~m:0);
  Alcotest.check_raises "dc raises"
    (Invalid_argument "Spec.output_value: unassigned DC") (fun () ->
      ignore (Spec.output_value s ~o:0 ~m:1))

let test_count_phase_engines_agree () =
  (* 65 minterms would not fit one word; use ni=7 to cross the 63-bit
     word boundary. *)
  let s = Spec.create ~ni:7 ~no:1 ~default:Spec.Off in
  for m = 0 to 127 do
    if m mod 3 = 0 then Spec.set s ~o:0 ~m Spec.On
    else if m mod 5 = 0 then Spec.set s ~o:0 ~m Spec.Dc
  done;
  List.iter
    (fun p ->
      let kernel =
        Bitvec.Bv.Kernel.with_mode true (fun () -> Spec.count_phase s ~o:0 p)
      in
      let scalar =
        Bitvec.Bv.Kernel.with_mode false (fun () -> Spec.count_phase s ~o:0 p)
      in
      check_int "popcount = byte scan" scalar kernel)
    [ Spec.On; Spec.Off; Spec.Dc ]

let test_plane_cache_invalidation () =
  let s = Spec.create ~ni:3 ~no:2 ~default:Spec.Off in
  Spec.set s ~o:0 ~m:1 Spec.On;
  let on, _, _ = Spec.phase_planes s ~o:0 in
  Alcotest.(check (list int)) "cached on-plane" [ 1 ] (Bitvec.Bv.to_list on);
  (* mutate: the next phase_planes call must reflect the change *)
  Spec.set s ~o:0 ~m:5 Spec.On;
  let on, _, dc = Spec.phase_planes s ~o:0 in
  Alcotest.(check (list int)) "rebuilt on-plane" [ 1; 5 ]
    (Bitvec.Bv.to_list on);
  check "dc empty" true (Bitvec.Bv.is_empty dc);
  (* other outputs are unaffected *)
  let on1, _, _ = Spec.phase_planes s ~o:1 in
  check "o1 untouched" true (Bitvec.Bv.is_empty on1);
  (* assign_dc also invalidates *)
  Spec.set s ~o:1 ~m:0 Spec.Dc;
  Spec.assign_dc s ~o:1 ~m:0 true;
  let on1, _, dc1 = Spec.phase_planes s ~o:1 in
  Alcotest.(check (list int)) "assigned" [ 0 ] (Bitvec.Bv.to_list on1);
  check "dc gone" true (Bitvec.Bv.is_empty dc1)

let test_neighbour_counts_batch_matches () =
  let s = Spec.create ~ni:7 ~no:1 ~default:Spec.Off in
  for m = 0 to 127 do
    if (m * 7) mod 11 < 3 then Spec.set s ~o:0 ~m Spec.On
    else if (m * 5) mod 13 < 4 then Spec.set s ~o:0 ~m Spec.Dc
  done;
  List.iter
    (fun kernel ->
      Bitvec.Bv.Kernel.with_mode kernel @@ fun () ->
      let on, off, dc = Spec.neighbour_counts_batch s ~o:0 in
      for m = 0 to 127 do
        let o_, f_, d_ = Spec.neighbour_counts s ~o:0 ~m in
        check_int "on" o_ on.(m);
        check_int "off" f_ off.(m);
        check_int "dc" d_ dc.(m)
      done)
    [ false; true ]

(* A spec with a mix of phases on every output, for the cache tests. *)
let mixed_spec () =
  let s = Spec.create ~ni:5 ~no:3 ~default:Spec.Off in
  for o = 0 to 2 do
    for m = 0 to 31 do
      if (m * (o + 3)) mod 7 < 2 then Spec.set s ~o ~m Spec.On
      else if (m * (o + 5)) mod 11 < 3 then Spec.set s ~o ~m Spec.Dc
    done
  done;
  s

let planes_equal (a, b, c) (a', b', c') =
  Bitvec.Bv.equal a a' && Bitvec.Bv.equal b b' && Bitvec.Bv.equal c c'

let test_warm_cache () =
  let s = mixed_spec () in
  let cold = Spec.copy s in
  Spec.warm_cache s;
  for o = 0 to 2 do
    check "warmed planes match lazily built ones" true
      (planes_equal (Spec.phase_planes s ~o) (Spec.phase_planes cold ~o))
  done;
  (* Warming again after an invalidating write rebuilds the stale
     output and leaves the rest correct. *)
  Spec.set s ~o:1 ~m:0 Spec.On;
  Spec.warm_cache s;
  let on, _, _ = Spec.phase_planes s ~o:1 in
  check "invalidated output rebuilt by warm_cache" true (Bitvec.Bv.get on 0)

(* Racing first-use builds from several domains: every domain gets
   planes equal to the sequentially built ones (the CAS publication
   can discard losers' copies but never mix them). *)
let test_plane_cache_concurrent_publish () =
  let reference = Spec.phase_planes (mixed_spec ()) ~o:0 in
  let s = mixed_spec () in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Spec.phase_planes s ~o:0))
  in
  List.iteri
    (fun i d ->
      check
        (Printf.sprintf "domain %d sees the published planes" i)
        true
        (planes_equal (Domain.join d) reference))
    domains

let prop_phase_partition =
  QCheck.Test.make ~name:"on+off+dc counts partition the space" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 16) (int_bound 2))
    (fun phases ->
      let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun m p ->
          Spec.set s ~o:0 ~m
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      Spec.on_count s ~o:0 + Spec.off_count s ~o:0 + Spec.dc_count s ~o:0 = 16)

let prop_neighbour_sum =
  QCheck.Test.make ~name:"neighbour counts always sum to ni" ~count:100
    QCheck.(pair (int_bound 15) (list_of_size (QCheck.Gen.return 16) (int_bound 2)))
    (fun (m, phases) ->
      let s = Spec.create ~ni:4 ~no:1 ~default:Spec.Off in
      List.iteri
        (fun i p ->
          Spec.set s ~o:0 ~m:i
            (match p with 0 -> Spec.Off | 1 -> Spec.On | _ -> Spec.Dc))
        phases;
      let on, off, dc = Spec.neighbour_counts s ~o:0 ~m in
      on + off + dc = 4)

let suite =
  ( "spec",
    [
      Alcotest.test_case "create defaults" `Quick test_create_defaults;
      Alcotest.test_case "set/get" `Quick test_set_get;
      Alcotest.test_case "assign_dc" `Quick test_assign_dc;
      Alcotest.test_case "copy/equal" `Quick test_copy_equal;
      Alcotest.test_case "signal probabilities" `Quick test_signal_probs;
      Alcotest.test_case "dc fraction" `Quick test_dc_fraction;
      Alcotest.test_case "neighbour counts" `Quick test_neighbour_counts;
      Alcotest.test_case "cover roundtrip" `Quick test_covers_roundtrip;
      Alcotest.test_case "of_covers overlap: on wins" `Quick
        test_of_covers_on_wins;
      Alcotest.test_case "iter_dc" `Quick test_iter_dc;
      Alcotest.test_case "bv extraction" `Quick test_bv_extraction;
      Alcotest.test_case "output_value" `Quick test_output_value;
      Alcotest.test_case "count_phase engines agree" `Quick
        test_count_phase_engines_agree;
      Alcotest.test_case "phase-plane cache invalidation" `Quick
        test_plane_cache_invalidation;
      Alcotest.test_case "neighbour_counts_batch matches per-minterm" `Quick
        test_neighbour_counts_batch_matches;
      Alcotest.test_case "warm_cache prebuilds every output" `Quick
        test_warm_cache;
      Alcotest.test_case "concurrent plane publication" `Quick
        test_plane_cache_concurrent_publish;
      QCheck_alcotest.to_alcotest prop_phase_partition;
      QCheck_alcotest.to_alcotest prop_neighbour_sum;
    ] )
