(* Splittable SplitMix64 streams: keying quality (no collisions across
   a large grid of (seed, index) draws), determinism of every derived
   view, and the end-to-end contract the streams exist for — the
   fig2/fig6 generators are pure functions of their seed at every job
   count, because each parallel task derives its own stream from
   (seed, task index) instead of sharing a sequential generator. *)

module S = Synthetic.Splittable
module Pool = Parallel.Pool
module E = Rdca_flow.Experiments

let check = Alcotest.(check bool)

let draws t n = List.init n (fun _ -> S.next_int64 t)

let test_stream_determinism () =
  let a = draws (S.stream ~seed:2011 ~index:7) 100 in
  let b = draws (S.stream ~seed:2011 ~index:7) 100 in
  check "equal keys give equal streams" true (a = b);
  let c = draws (S.stream ~seed:2011 ~index:8) 100 in
  let d = draws (S.stream ~seed:2012 ~index:7) 100 in
  check "sibling index differs" true (a <> c);
  check "sibling seed differs" true (a <> d)

(* 10^5 draws across a 1000-stream x 100-draw grid plus the stream of
   every index's first draw: all 64-bit outputs distinct.  SplitMix64
   is a bijection of its state, so collisions across well-keyed
   streams would mean the keying collapses states — the exact failure
   mode that would make parallel tasks generate correlated inputs. *)
let test_no_collisions () =
  let seen = Hashtbl.create 200_003 in
  let collisions = ref 0 in
  for index = 0 to 999 do
    let t = S.stream ~seed:42 ~index in
    for _ = 1 to 100 do
      let v = S.next_int64 t in
      if Hashtbl.mem seen v then incr collisions else Hashtbl.add seen v ()
    done
  done;
  check "no collisions over 10^5 draws" true (!collisions = 0);
  Alcotest.(check int) "draw count" 100_000 (Hashtbl.length seen)

let test_split_diverges () =
  let t = S.stream ~seed:5 ~index:0 in
  let u = S.split t in
  check "split stream differs from parent" true (draws t 20 <> draws u 20)

let test_to_random_state_deterministic () =
  let mk () = S.to_random_state (S.stream ~seed:9 ~index:3) in
  let a = mk () and b = mk () in
  let seq st = List.init 50 (fun _ -> Random.State.int st 1000) in
  check "bridged Random.State is deterministic" true (seq a = seq b)

let prop_int_bounds =
  QCheck.Test.make ~name:"Splittable.int stays in bounds" ~count:200
    QCheck.(triple small_int small_int (int_range 1 1000))
    (fun (seed, index, bound) ->
      let t = S.stream ~seed ~index in
      List.for_all
        (fun _ ->
          let v = S.int t bound in
          0 <= v && v < bound)
        (List.init 20 Fun.id))

let prop_stream_stable =
  QCheck.Test.make ~name:"stream is a pure function of (seed, index)"
    ~count:100
    QCheck.(pair small_int small_int)
    (fun (seed, index) ->
      draws (S.stream ~seed ~index) 10 = draws (S.stream ~seed ~index) 10)

(* ------------------------------------------------------------------ *)
(* End-to-end: the generator-backed experiments are identical at any
   job count (structural equality on float-carrying records is exact
   equality of every bit of every field). *)

let at_jobs f = List.map (fun j -> Pool.with_jobs j f) [ 1; 2; 4 ]

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (fun y -> y = x) rest

let test_fig2_identical_across_jobs () =
  check "fig2 identical at jobs 1/2/4" true
    (all_equal
       (at_jobs (fun () ->
            E.fig2 ~targets:[ 0.3; 0.7 ] ~per_target:2 ~seed:42 ())))

let test_fig6_identical_across_jobs () =
  check "fig6 identical at jobs 1/2/4" true
    (all_equal
       (at_jobs (fun () ->
            E.fig6 ~families:[ 0.4 ] ~funcs_per_family:2
              ~fractions:[ 0.0; 1.0 ] ~ni:6 ~no:2 ~seed:66 ())))

let suite =
  ( "splittable",
    [
      Alcotest.test_case "stream determinism and keying" `Quick
        test_stream_determinism;
      Alcotest.test_case "no collisions over 10^5 draws" `Quick
        test_no_collisions;
      Alcotest.test_case "split diverges from parent" `Quick
        test_split_diverges;
      Alcotest.test_case "to_random_state deterministic" `Quick
        test_to_random_state_deterministic;
      QCheck_alcotest.to_alcotest prop_int_bounds;
      QCheck_alcotest.to_alcotest prop_stream_stable;
      Alcotest.test_case "fig2 identical across job counts" `Quick
        test_fig2_identical_across_jobs;
      Alcotest.test_case "fig6 identical across job counts" `Quick
        test_fig6_identical_across_jobs;
    ] )
