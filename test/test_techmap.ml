(* Tests for the standard-cell library and the technology mapper. *)

module Cover = Twolevel.Cover
module Cube = Twolevel.Cube
module Truth = Logic.Truth
module Stdcell = Techmap.Stdcell
module Mapper = Techmap.Mapper
module Report = Techmap.Report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lib = Stdcell.default_library ()

let test_library_valid () =
  (match Stdcell.validate lib with
  | None -> ()
  | Some msg -> Alcotest.fail ("library invalid: " ^ msg));
  check "has inv" true ((Stdcell.inv lib).Stdcell.name = "INV");
  check "has buf" true ((Stdcell.buf lib).Stdcell.name = "BUF")

let test_library_tts () =
  let nand2 = Stdcell.find lib "NAND2" in
  check_int "nand2 tt" 0b0111 nand2.Stdcell.tt;
  let aoi21 = Stdcell.find lib "AOI21" in
  (* AOI21 = !((a&b)|c): true for idx where not((a&&b)||c). *)
  for idx = 0 to 7 do
    let a = idx land 1 <> 0 and b = idx land 2 <> 0 and c = idx land 4 <> 0 in
    check
      (Printf.sprintf "aoi21 idx=%d" idx)
      (not ((a && b) || c))
      (Truth.eval aoi21.Stdcell.tt idx)
  done

let test_validate_catches () =
  let bad = List.filter (fun c -> c.Stdcell.name <> "INV") lib in
  check "missing inv detected" true (Stdcell.validate bad <> None);
  let bad2 =
    { (Stdcell.find lib "AND2") with Stdcell.area = -1.0 } :: lib
  in
  check "negative area detected" true (Stdcell.validate bad2 <> None)

let cov n strs = Cover.make ~n (List.map Cube.of_string strs)

let map_and_check ~mode cover_list ni =
  let aig = Aig.of_covers ~ni cover_list in
  let nl = Mapper.map ~mode ~lib aig in
  for m = 0 to (1 lsl ni) - 1 do
    let expected = Aig.eval_minterm aig m in
    let got = Netlist.eval_minterm nl m in
    if expected <> got then
      Alcotest.failf "mapped netlist differs at minterm %d (mode %s)" m
        (Mapper.mode_name mode)
  done;
  nl

let test_map_simple_equiv () =
  let c = cov 4 [ "11--"; "--11"; "1--0" ] in
  List.iter
    (fun mode -> ignore (map_and_check ~mode [ c ] 4))
    [ Mapper.Delay; Mapper.Area; Mapper.Power ]

let test_map_multi_output () =
  let c0 = cov 3 [ "1-0"; "-11" ] in
  let c1 = cov 3 [ "000" ] in
  let c2 = Cover.empty ~n:3 in
  let c3 = Cover.universe ~n:3 in
  (* includes constant outputs *)
  ignore (map_and_check ~mode:Mapper.Delay [ c0; c1; c2; c3 ] 3)

let test_map_xor_uses_xor_cell () =
  (* A bare XOR should map to an XOR2/XNOR2 cell rather than a pile of
     NAND2s under area optimisation. *)
  let aig = Aig.create ~ni:2 in
  let f = Aig.lxor_ aig (Aig.input aig 0) (Aig.input aig 1) in
  Aig.set_outputs aig [| f |];
  let nl = Mapper.map ~mode:Mapper.Area ~lib aig in
  let has_xor = ref false in
  Netlist.iter_nodes nl (fun _ g _ ->
      match g with
      | Netlist.Gate.Cell c
        when c.Netlist.Gate.cell_name = "XOR2"
             || c.Netlist.Gate.cell_name = "XNOR2" ->
          has_xor := true
      | _ -> ());
  check "xor cell used" true !has_xor;
  for m = 0 to 3 do
    check
      (Printf.sprintf "xor m=%d" m)
      (m = 1 || m = 2)
      (Netlist.eval_minterm nl m).(0)
  done

let test_delay_mode_not_slower () =
  (* Delay-optimised mapping should never have a longer critical path
     than area-optimised mapping of the same function. *)
  let c = cov 5 [ "11---"; "--111"; "1--0-"; "0-1-0"; "-01-1" ] in
  let aig = Aig.of_covers ~ni:5 [ c ] in
  let d = Report.of_netlist (Mapper.map ~mode:Mapper.Delay ~lib aig) in
  let a = Report.of_netlist (Mapper.map ~mode:Mapper.Area ~lib aig) in
  check "delay <= area-mode delay" true (d.Report.delay <= a.Report.delay +. 1e-9)

let test_area_mode_not_bigger () =
  let c = cov 5 [ "11---"; "--111"; "1--0-"; "0-1-0"; "-01-1" ] in
  let aig = Aig.of_covers ~ni:5 [ c ] in
  let d = Report.of_netlist (Mapper.map ~mode:Mapper.Delay ~lib aig) in
  let a = Report.of_netlist (Mapper.map ~mode:Mapper.Area ~lib aig) in
  check "area <= delay-mode area" true (a.Report.area <= d.Report.area +. 1e-9)

let test_report_normalise () =
  let base = { Report.area = 10.0; delay = 2.0; power = 5.0; gates = 7; depth = 3 } in
  let r = { Report.area = 5.0; delay = 4.0; power = 5.0; gates = 9; depth = 4 } in
  let n = Report.normalise ~base r in
  Alcotest.(check (float 1e-9)) "area ratio" 0.5 n.Report.area;
  Alcotest.(check (float 1e-9)) "delay ratio" 2.0 n.Report.delay;
  Alcotest.(check (float 1e-9)) "power ratio" 1.0 n.Report.power

let gen_cover n =
  QCheck.Gen.(
    let gen_cube =
      list_repeat n (frequencyl [ (2, Cube.Zero); (2, Cube.One); (3, Cube.Free) ])
      |> map (Cube.make ~n)
    in
    list_size (int_range 0 6) gen_cube |> map (fun cs -> Cover.make ~n cs))

let arb_cover n =
  QCheck.make ~print:(fun cv -> Format.asprintf "%a" Cover.pp cv) (gen_cover n)

let prop_mapping_equiv mode name =
  QCheck.Test.make ~name ~count:80
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (c0, c1) ->
      let aig = Aig.of_covers ~ni:5 [ c0; c1 ] in
      let nl = Mapper.map ~mode ~lib aig in
      let ok = ref true in
      for m = 0 to 31 do
        if Aig.eval_minterm aig m <> Netlist.eval_minterm nl m then ok := false
      done;
      !ok)

(* The mapper memoises cut enumeration and its match index; repeated
   maps — including with a freshly allocated but structurally equal
   library, which hits the same index entry — must be identical to
   the first. *)
let test_map_memoised_identical () =
  let aig =
    let t = Aig.create ~ni:3 in
    let a = Aig.input t 0 and b = Aig.input t 1 and c = Aig.input t 2 in
    Aig.set_outputs t [| Aig.lor_ t (Aig.land_ t a b) c |];
    t
  in
  let report m = Report.of_netlist m in
  let r1 = report (Mapper.map ~mode:Mapper.Area ~lib aig) in
  let r2 = report (Mapper.map ~mode:Mapper.Area ~lib aig) in
  check "repeat map identical" true (r1 = r2);
  let r3 =
    report (Mapper.map ~mode:Mapper.Area ~lib:(Stdcell.default_library ()) aig)
  in
  check "fresh library instance identical" true (r1 = r3)

let suite =
  ( "techmap",
    [
      Alcotest.test_case "library valid" `Quick test_library_valid;
      Alcotest.test_case "library truth tables" `Quick test_library_tts;
      Alcotest.test_case "validate catches errors" `Quick test_validate_catches;
      Alcotest.test_case "simple mapping equivalence" `Quick
        test_map_simple_equiv;
      Alcotest.test_case "multi-output with constants" `Quick
        test_map_multi_output;
      Alcotest.test_case "xor maps to xor cell" `Quick
        test_map_xor_uses_xor_cell;
      Alcotest.test_case "delay mode is fastest" `Quick
        test_delay_mode_not_slower;
      Alcotest.test_case "area mode is smallest" `Quick
        test_area_mode_not_bigger;
      Alcotest.test_case "report normalise" `Quick test_report_normalise;
      Alcotest.test_case "memoised mapping identical" `Quick
        test_map_memoised_identical;
      QCheck_alcotest.to_alcotest
        (prop_mapping_equiv Mapper.Delay "delay mapping preserves function");
      QCheck_alcotest.to_alcotest
        (prop_mapping_equiv Mapper.Area "area mapping preserves function");
      QCheck_alcotest.to_alcotest
        (prop_mapping_equiv Mapper.Power "power mapping preserves function");
    ] )

(* K-LUT mapping (the "renode" path). *)

module Lutmap = Techmap.Lutmap

let test_lutmap_equivalence () =
  let c0 = cov 5 [ "11---"; "--111"; "1--0-"; "0-1-0" ] in
  let c1 = cov 5 [ "00---"; "---11" ] in
  let aig = Aig.of_covers ~ni:5 [ c0; c1 ] in
  List.iter
    (fun k ->
      let nl = Lutmap.map ~k aig in
      for m = 0 to 31 do
        if Aig.eval_minterm aig m <> Netlist.eval_minterm nl m then
          Alcotest.failf "lutmap k=%d differs at %d" k m
      done)
    [ 2; 3; 4 ]

let test_lutmap_coarsens () =
  (* 4-LUT covering needs at most as many nodes as 2-LUT covering. *)
  let c = cov 6 [ "11----"; "--11--"; "----11"; "1--0-1" ] in
  let aig = Aig.of_covers ~ni:6 [ c ] in
  let n2 = Lutmap.lut_count (Lutmap.map ~k:2 aig) in
  let n4 = Lutmap.lut_count (Lutmap.map ~k:4 aig) in
  check "4-LUTs coarser" true (n4 <= n2);
  check "some luts" true (n4 > 0)

let test_lutmap_renode_dc_spaces () =
  (* Coarser nodes expose satisfiability DCs for Decompose: use the
     deterministic bench stand-in (correlated multi-output logic). *)
  let spec = Synthetic.Suite.load_by_name "bench" in
  let _, covers = Rdca_flow.Flow.implement (Pla.Spec.copy spec) in
  let aig = Aig.Opt.balance (Aig.of_covers ~ni:6 covers) in
  let nl = Lutmap.map ~k:4 aig in
  let masks = Rdca_core.Decompose.local_patterns nl in
  let with_dc = ref 0 in
  Netlist.iter_nodes nl (fun id g _ ->
      match g with
      | Netlist.Gate.Cell cell when cell.Netlist.Gate.arity >= 2 ->
          let full = (1 lsl (1 lsl cell.Netlist.Gate.arity)) - 1 in
          if masks.(id) <> full && masks.(id) <> 0 then incr with_dc
      | _ -> ());
  check "at least one LUT has local DCs" true (!with_dc >= 1);
  (* reassignment must keep I/O *)
  let nl' = Rdca_core.Decompose.reassign ~threshold:0.65 nl in
  for m = 0 to 63 do
    check
      (Printf.sprintf "io m=%d" m)
      true
      (Netlist.eval_minterm nl m = Netlist.eval_minterm nl' m)
  done

let prop_lutmap_equiv =
  QCheck.Test.make ~name:"lutmap preserves function (k=4)" ~count:80
    QCheck.(pair (arb_cover 5) (arb_cover 5))
    (fun (c0, c1) ->
      let aig = Aig.of_covers ~ni:5 [ c0; c1 ] in
      let nl = Lutmap.map ~k:4 aig in
      let ok = ref true in
      for m = 0 to 31 do
        if Aig.eval_minterm aig m <> Netlist.eval_minterm nl m then ok := false
      done;
      !ok)

let lut_cases =
  [
    Alcotest.test_case "lutmap equivalence" `Quick test_lutmap_equivalence;
    Alcotest.test_case "lutmap coarsens" `Quick test_lutmap_coarsens;
    Alcotest.test_case "lutmap renode exposes DCs" `Quick
      test_lutmap_renode_dc_spaces;
    QCheck_alcotest.to_alcotest prop_lutmap_equiv;
  ]

let suite = (fst suite, snd suite @ lut_cases)
